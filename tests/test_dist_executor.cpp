// Distributed StudyGraph: protocol unit tests, coordinator-vs-in-process
// byte-identity, and fault-injection recovery.
//
// The parity tests spawn real `msim worker` processes (MSIM_CLI_PATH, set
// by CMake to the msim_cli binary) against a scratch cache directory and
// compare canonical text renderings of everything a study exposes —
// observations, probe sets, signatures — between an in-process build and
// a distributed one. The fault tests then inject each MSIM_TEST_WORKER_FAULT
// class and require the exact same bytes again, plus a `dist.retry` tick
// proving recovery actually ran (for the fault classes that retry).
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "machine/config_io.hpp"
#include "machine/registry.hpp"
#include "obs/registry.hpp"
#include "pipeline/dist_executor.hpp"
#include "pipeline/dist_protocol.hpp"
#include "pipeline/stage_tasks.hpp"
#include "pipeline/study_builder.hpp"
#include "pipeline/study_graph.hpp"
#include "probes/probe_io.hpp"
#include "simulate/observation_io.hpp"
#include "trace/signature_io.hpp"
#include "workload/app_io.hpp"
#include "workload/apps.hpp"

namespace msim::pipeline {
namespace {

namespace fs = std::filesystem;

fs::path scratch_dir(const std::string& tag) {
  const fs::path dir = fs::temp_directory_path() / ("msim-test-" + tag);
  fs::remove_all(dir);
  return dir;
}

/// The distributed-executor tests must not inherit distribution or fault
/// settings from the invoking environment.
class DistEnvFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    for (const char* name :
         {"MSIM_DIST_WORKERS", "MSIM_WORKER_CMD", "MSIM_DIST_PLAN",
          "MSIM_DIST_RECORD_DIR", "MSIM_DIST_TIMEOUT_S", "MSIM_DIST_RETRIES",
          "MSIM_TEST_WORKER_FAULT", "MSIM_TEST_WORKER_FAULT_SENTINEL"}) {
      ::unsetenv(name);
    }
  }
  void TearDown() override { SetUp(); }
};

using DistProtocol = DistEnvFixture;
using DistExecutor = DistEnvFixture;

/// A trimmed paper study — a few targets, two applications — big enough
/// to exercise every unit kind (probes, traces, ground-truth chunks +
/// assembly) while keeping each spawned build fast.
StudySpec small_spec() {
  StudySpec spec = paper_spec();
  spec.targets.resize(3);
  spec.suite.resize(2);
  return spec;
}

/// Canonical text rendering of everything a study exposes; equality here
/// means a distributed build produced bit-identical science.
std::string study_fingerprint(const metrics::Study& study) {
  std::string out = simulate::to_text(study.observations());
  out += probes::to_text(study.probe_set(study.base_machine()));
  for (const auto& name : study.target_names()) {
    out += probes::to_text(study.probe_set(name));
  }
  for (const auto& test_case : study.suite()) {
    for (const int nprocs : test_case.cpu_counts) {
      out += trace::to_text(study.signature(test_case.name, nprocs));
    }
  }
  return out;
}

metrics::Study build_in_process(const fs::path& cache) {
  StudyGraph graph;
  graph.cache(true).cache_dir(cache.string());
  const std::size_t handle = graph.add_study(small_spec());
  graph.build_all();
  return graph.take_study(handle);
}

metrics::Study build_distributed(const fs::path& cache, DistOptions options,
                                 DistStats* stats_out = nullptr) {
  if (options.worker_cmd.empty()) options.worker_cmd = MSIM_CLI_PATH;
  StudyGraph graph;
  graph.cache(true).cache_dir(cache.string()).distribute(options);
  const std::size_t handle = graph.add_study(small_spec());
  graph.build_all();
  if (stats_out != nullptr) *stats_out = graph.stats().dist;
  return graph.take_study(handle);
}

std::uint64_t retry_count() {
  return obs::Registry::instance().counter("dist.retry").value();
}

// --- protocol ----------------------------------------------------------

TEST_F(DistProtocol, UnitJsonRoundTripsEveryKindLosslessly) {
  const auto machine = machine::find("ARL_Xeon");

  WorkUnit probe;
  probe.kind = WorkUnit::Kind::Probe;
  probe.artifact = probe_artifact_name(machine);
  probe.machine_text = machine::to_text(machine);

  WorkUnit trace;
  trace.kind = WorkUnit::Kind::Trace;
  trace.artifact = "sig-abc.txt";
  trace.base = "ASC_SGI_O3900";
  trace.app_text = "app text\nwith \"quotes\"\n";
  // Full-width seeds: a JSON double would round these past 2^53.
  trace.tracer.seed = 0xFFFFFFFFFFFFFF01ull;
  trace.tracer.sample_refs = (1ull << 60) + 7;

  WorkUnit gt;
  gt.kind = WorkUnit::Kind::GtItem;
  gt.artifact = ground_truth_chunk_name(0x1234, 3);
  gt.app_name = "AVUS_Standard";
  gt.nprocs = 64;
  gt.app_text = "gt app";
  gt.machine_texts = {machine::to_text(machine), "other machine text"};
  gt.executor.noise_salt = 0xFFFFFFFFFFFFFFF3ull;
  gt.executor.noise_amplitude = 0.123456789012345678;
  gt.executor.apply_conflicts = false;

  for (const WorkUnit& unit : {probe, trace, gt}) {
    const WorkUnit back = unit_from_json(json::parse(unit_to_json(unit)));
    EXPECT_EQ(back.kind, unit.kind);
    EXPECT_EQ(back.artifact, unit.artifact);
    EXPECT_EQ(back.machine_text, unit.machine_text);
    EXPECT_EQ(back.app_text, unit.app_text);
    EXPECT_EQ(back.base, unit.base);
    EXPECT_EQ(back.app_name, unit.app_name);
    EXPECT_EQ(back.nprocs, unit.nprocs);
    EXPECT_EQ(back.machine_texts, unit.machine_texts);
    EXPECT_EQ(back.tracer.seed, unit.tracer.seed);
    EXPECT_EQ(back.tracer.sample_refs, unit.tracer.sample_refs);
    EXPECT_EQ(back.executor.noise_salt, unit.executor.noise_salt);
    EXPECT_EQ(back.executor.noise_amplitude, unit.executor.noise_amplitude);
    EXPECT_EQ(back.executor.apply_conflicts, unit.executor.apply_conflicts);
  }
}

TEST_F(DistProtocol, ShardPlanRoundTripsThroughJson) {
  ShardPlan plan;
  WorkUnit unit;
  unit.kind = WorkUnit::Kind::Probe;
  unit.artifact = "probe-1.bin";
  unit.machine_text = "machine";
  plan.units.push_back(unit);
  GtAssembly assembly;
  assembly.artifact = ground_truth_artifact_name(0xfeed);
  assembly.chunks = {ground_truth_chunk_name(0xfeed, 0),
                     ground_truth_chunk_name(0xfeed, 1)};
  plan.assemblies.push_back(assembly);

  const ShardPlan back = plan_from_json(plan_to_json(plan));
  ASSERT_EQ(back.units.size(), 1u);
  EXPECT_EQ(back.units[0].artifact, "probe-1.bin");
  ASSERT_EQ(back.assemblies.size(), 1u);
  EXPECT_EQ(back.assemblies[0].artifact, assembly.artifact);
  EXPECT_EQ(back.assemblies[0].chunks, assembly.chunks);
}

TEST_F(DistProtocol, RequestLineCarriesIdAndReplyRoundTrips) {
  WorkUnit unit;
  unit.kind = WorkUnit::Kind::Probe;
  unit.artifact = "a.bin";
  unit.machine_text = "m";
  const std::string line = request_line(42, unit);
  EXPECT_EQ(line.back(), '\n');
  const json::Value doc = json::parse(line);
  EXPECT_EQ(doc.number_or("id", 0), 42.0);
  EXPECT_EQ(doc.string_or("op", ""), "probe");

  WorkerReply ok;
  ok.status = WorkerReply::Status::Ok;
  ok.id = 7;
  ok.cached = true;
  ok.seconds = 0.25;
  const auto ok_back = parse_reply(reply_line(ok));
  ASSERT_TRUE(ok_back.has_value());
  EXPECT_EQ(ok_back->status, WorkerReply::Status::Ok);
  EXPECT_EQ(ok_back->id, 7u);
  EXPECT_TRUE(ok_back->cached);

  WorkerReply bye;
  bye.status = WorkerReply::Status::Bye;
  bye.id = 8;
  bye.peak_rss_kb = 12345;
  const auto bye_back = parse_reply(reply_line(bye));
  ASSERT_TRUE(bye_back.has_value());
  EXPECT_EQ(bye_back->peak_rss_kb, 12345);

  WorkerReply error;
  error.status = WorkerReply::Status::Error;
  error.id = 9;
  error.message = "boom \"quoted\"";
  const auto error_back = parse_reply(reply_line(error));
  ASSERT_TRUE(error_back.has_value());
  EXPECT_EQ(error_back->message, "boom \"quoted\"");
}

TEST_F(DistProtocol, MalformedRepliesParseToNullopt) {
  // Every shape a dying or garbled worker can emit: the coordinator must
  // see nullopt (→ kill + retry), never a bogus parse.
  for (const char* line :
       {"", "\n", "!!! not json at all\n", "{\"id\":1,\"status\":\"ok\"\n",
        "{\"status\":\"ok\",\"cached\":true}\n",
        "{\"id\":1,\"status\":\"weird\"}\n", "{\"id\":1}\n",
        "{\"id\":1,\"status\":\"ok\"}\n", "[1,2,3]\n", "42\n"}) {
    EXPECT_FALSE(parse_reply(line).has_value()) << "line: " << line;
  }
}

TEST_F(DistProtocol, WorkerLoopAnswersRequestsAndExits) {
  const fs::path dir = scratch_dir("dist-worker-loop");
  const ArtifactCache cache(dir.string(), 0);
  const auto machine = machine::find("ARL_Xeon");

  WorkUnit unit;
  unit.kind = WorkUnit::Kind::Probe;
  unit.artifact = probe_artifact_name(machine);
  unit.machine_text = machine::to_text(machine);

  std::FILE* in = std::tmpfile();
  std::FILE* out = std::tmpfile();
  ASSERT_NE(in, nullptr);
  ASSERT_NE(out, nullptr);
  const std::string requests = request_line(1, unit) + exit_request_line(2);
  std::fputs(requests.c_str(), in);
  std::rewind(in);

  EXPECT_EQ(run_worker_loop(in, out, cache), 0);

  std::rewind(out);
  char line[4096];
  ASSERT_NE(std::fgets(line, sizeof line, out), nullptr);
  const auto first = parse_reply(line);
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->status, WorkerReply::Status::Ok);
  EXPECT_EQ(first->id, 1u);
  ASSERT_NE(std::fgets(line, sizeof line, out), nullptr);
  const auto second = parse_reply(line);
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->status, WorkerReply::Status::Bye);
  EXPECT_GT(second->peak_rss_kb, 0);

  // The unit's artifact landed in the shared cache, and it parses back to
  // exactly what an in-process probe stage computes.
  const auto cached = try_probe_cache(machine, cache);
  ASSERT_TRUE(cached.has_value());
  std::fclose(in);
  std::fclose(out);
  fs::remove_all(dir);
}

TEST_F(DistProtocol, WorkerLoopRejectsMalformedRequest) {
  const fs::path dir = scratch_dir("dist-worker-bad");
  const ArtifactCache cache(dir.string(), 0);
  std::FILE* in = std::tmpfile();
  std::FILE* out = std::tmpfile();
  ASSERT_NE(in, nullptr);
  ASSERT_NE(out, nullptr);
  std::fputs("this is not a request\n", in);
  std::rewind(in);
  EXPECT_EQ(run_worker_loop(in, out, cache), 1);
  std::rewind(out);
  char line[4096];
  ASSERT_NE(std::fgets(line, sizeof line, out), nullptr);
  const auto reply = parse_reply(line);
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->status, WorkerReply::Status::Error);
  std::fclose(in);
  std::fclose(out);
  fs::remove_all(dir);
}

// --- coordinator parity ------------------------------------------------

TEST_F(DistExecutor, DistributedBuildIsByteIdenticalToInProcess) {
  const fs::path dir_a = scratch_dir("dist-parity-a");
  const fs::path dir_b = scratch_dir("dist-parity-b");
  const fs::path plan_path = scratch_dir("dist-parity-plan") / "plan.json";
  fs::create_directories(plan_path.parent_path());

  const std::string reference =
      study_fingerprint(build_in_process(dir_a));

  DistOptions options;
  options.workers = 2;
  options.plan_path = plan_path.string();
  DistStats stats;
  const std::string distributed =
      study_fingerprint(build_distributed(dir_b, options, &stats));

  EXPECT_EQ(distributed, reference);
  EXPECT_EQ(stats.workers, 2u);
  EXPECT_GT(stats.units, 0u);
  EXPECT_EQ(stats.retries, 0u);
  EXPECT_EQ(stats.assemblies, 1u);
  EXPECT_GT(stats.max_worker_rss_kb, 0);

  // The shard plan the coordinator wrote is valid JSON and round-trips.
  std::ifstream plan_in(plan_path);
  ASSERT_TRUE(plan_in.good());
  std::stringstream buffer;
  buffer << plan_in.rdbuf();
  const ShardPlan plan = plan_from_json(buffer.str());
  EXPECT_EQ(plan.units.size(), stats.units);

  // A second distributed build over the same cache is all cache, no work.
  DistStats warm;
  const std::string rebuilt =
      study_fingerprint(build_distributed(dir_b, options, &warm));
  EXPECT_EQ(rebuilt, reference);
  EXPECT_EQ(warm.units, 0u);

  fs::remove_all(dir_a);
  fs::remove_all(dir_b);
  fs::remove_all(plan_path.parent_path());
}

/// One fault-injection round: inject `fault` on the first request, build
/// distributed, and require byte-identity with `reference` plus at least
/// one `dist.retry` tick (recovery actually fired).
void expect_recovery(const std::string& fault, const std::string& reference,
                     double timeout_seconds = 300.0) {
  const fs::path dir = scratch_dir("dist-fault-" + fault);
  const fs::path sentinel =
      fs::temp_directory_path() / ("msim-fault-" + fault + ".sentinel");
  fs::remove(sentinel);
  ::setenv("MSIM_TEST_WORKER_FAULT", (fault + ":1").c_str(), 1);
  ::setenv("MSIM_TEST_WORKER_FAULT_SENTINEL", sentinel.c_str(), 1);

  DistOptions options;
  options.workers = 2;
  options.unit_timeout_seconds = timeout_seconds;
  const std::uint64_t retries_before = retry_count();
  DistStats stats;
  const std::string distributed =
      study_fingerprint(build_distributed(dir, options, &stats));

  EXPECT_EQ(distributed, reference) << "fault class: " << fault;
  EXPECT_GE(retry_count(), retries_before + 1) << "fault class: " << fault;
  EXPECT_GE(stats.retries, 1u);
  // The fault fired exactly once (sentinel claimed), so the retried unit
  // succeeded on a respawned worker.
  EXPECT_TRUE(fs::exists(sentinel));

  ::unsetenv("MSIM_TEST_WORKER_FAULT");
  ::unsetenv("MSIM_TEST_WORKER_FAULT_SENTINEL");
  fs::remove(sentinel);
  fs::remove_all(dir);
}

TEST_F(DistExecutor, WorkerCrashMidNodeRecoversByteIdentical) {
  const fs::path dir = scratch_dir("dist-fault-ref");
  const std::string reference = study_fingerprint(build_in_process(dir));
  expect_recovery("crash", reference);
  fs::remove_all(dir);
}

TEST_F(DistExecutor, WorkerHangPastTimeoutRecoversByteIdentical) {
  const fs::path dir = scratch_dir("dist-fault-ref");
  const std::string reference = study_fingerprint(build_in_process(dir));
  // Tight unit deadline so the injected 1000 s hang trips quickly.
  expect_recovery("hang", reference, 2.0);
  fs::remove_all(dir);
}

TEST_F(DistExecutor, CorruptArtifactFromDyingWorkerIsCaughtByChecksum) {
  const fs::path dir = scratch_dir("dist-fault-ref");
  const std::string reference = study_fingerprint(build_in_process(dir));
  // The worker reports ok but leaves a payload whose bytes no longer
  // match the index checksum; the coordinator's verifying load must turn
  // that into a retry (cache v2 integrity), never into wrong data.
  expect_recovery("corrupt", reference);
  fs::remove_all(dir);
}

TEST_F(DistExecutor, GarbledReplyStreamDegradesToRetry) {
  const fs::path dir = scratch_dir("dist-fault-ref");
  const std::string reference = study_fingerprint(build_in_process(dir));
  expect_recovery("garble", reference);
  fs::remove_all(dir);
}

TEST_F(DistExecutor, WorkerErrorPropagatesAsFirstErrorWithoutRetries) {
  // A unit that fails deterministically (artifact name contradicts its
  // machine) must surface the worker's error message once, not burn the
  // retry budget repeating it.
  const fs::path dir = scratch_dir("dist-error");
  const ArtifactCache cache(dir.string(), 0);
  ShardPlan plan;
  WorkUnit unit;
  unit.kind = WorkUnit::Kind::Probe;
  unit.artifact = "probe-0000000000000000.bin";  // wrong on purpose
  unit.machine_text = machine::to_text(machine::find("ARL_Xeon"));
  plan.units.push_back(unit);

  DistOptions options;
  options.workers = 1;
  options.worker_cmd = MSIM_CLI_PATH;
  const std::uint64_t retries_before = retry_count();
  try {
    (void)run_shard_plan(plan, cache, options);
    FAIL() << "expected run_shard_plan to throw";
  } catch (const std::runtime_error& error) {
    EXPECT_NE(std::string(error.what()).find("does not match"),
              std::string::npos)
        << error.what();
  }
  EXPECT_EQ(retry_count(), retries_before);
  fs::remove_all(dir);
}

TEST_F(DistExecutor, RetryExhaustionThrowsNamingTheUnit) {
  // Every dispatch crashes (fault fires on request 1 of every worker and
  // the sentinel is never claimable twice — so use per-attempt sentinels
  // via a fresh env-less claim: simplest is no sentinel claim at all,
  // i.e. fault sentinel in a directory we keep deleting). Instead, spawn
  // a worker command that is not a worker at all: every reply is
  // malformed, so the unit burns its retries and the coordinator throws.
  const fs::path dir = scratch_dir("dist-exhaust");
  const ArtifactCache cache(dir.string(), 0);
  ShardPlan plan;
  WorkUnit unit;
  unit.kind = WorkUnit::Kind::Probe;
  unit.artifact = probe_artifact_name(machine::find("ARL_Xeon"));
  unit.machine_text = machine::to_text(machine::find("ARL_Xeon"));
  plan.units.push_back(unit);

  DistOptions options;
  options.workers = 1;
  options.worker_cmd = "/bin/cat";  // echoes requests: malformed replies
  options.max_retries = 1;
  const std::uint64_t retries_before = retry_count();
  try {
    (void)run_shard_plan(plan, cache, options);
    FAIL() << "expected run_shard_plan to throw";
  } catch (const std::runtime_error& error) {
    EXPECT_NE(std::string(error.what()).find(unit.artifact),
              std::string::npos)
        << error.what();
  }
  EXPECT_EQ(retry_count(), retries_before + 2);  // initial + 1 retry
  fs::remove_all(dir);
}

}  // namespace
}  // namespace msim::pipeline
