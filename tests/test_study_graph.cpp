// The cross-study stage graph: a multi-study build must be bitwise
// identical to individual StudyBuilder builds, share stage nodes across
// studies (probes across ablations, traces across noise worlds), honor
// the warm-cache contract per study, and never exceed the scheduler's
// thread bound.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "machine/registry.hpp"
#include "metrics/metric_set.hpp"
#include "pipeline/scheduler.hpp"
#include "pipeline/stage_tasks.hpp"
#include "pipeline/study_builder.hpp"
#include "pipeline/study_graph.hpp"
#include "probes/probe_io.hpp"
#include "simulate/observation_io.hpp"
#include "trace/signature_io.hpp"
#include "workload/apps.hpp"

namespace msim::pipeline {
namespace {

namespace fs = std::filesystem;

/// Fresh scratch cache directory, unique per test.
fs::path scratch_cache(const std::string& tag) {
  const fs::path dir = fs::temp_directory_path() / ("msim-test-" + tag);
  fs::remove_all(dir);
  return dir;
}

/// A reduced two-target, one-case spec cheap enough to build repeatedly.
StudySpec small_spec(const std::string& base_name) {
  StudySpec spec;
  for (const auto& name :
       {std::string("ARL_Xeon"), std::string("ARL_Opteron")}) {
    if (name != base_name) spec.targets.push_back(machine::find(name));
  }
  spec.base = machine::find(base_name);
  spec.suite = {workload::find_test_case("RFCTH_Standard")};
  return spec;
}

void expect_studies_bitwise_equal(const metrics::Study& actual,
                                  const metrics::Study& expected) {
  EXPECT_EQ(simulate::to_text(actual.observations()),
            simulate::to_text(expected.observations()));
  const auto metric_list = metrics::all_metrics();
  const auto lhs = actual.evaluate(metric_list);
  const auto rhs = expected.evaluate(metric_list);
  ASSERT_EQ(lhs.size(), rhs.size());
  for (std::size_t i = 0; i < lhs.size(); ++i) {
    EXPECT_EQ(lhs[i].predicted_seconds, rhs[i].predicted_seconds);
    EXPECT_EQ(lhs[i].actual_seconds, rhs[i].actual_seconds);
  }
}

TEST(StudyGraph, MultiStudyMatchesIndividualBuilders) {
  // Two ablation-style studies (different base system) built on one graph
  // must equal the same studies built one at a time by StudyBuilder.
  StudyGraph graph;
  const std::size_t a = graph.add_study(small_spec("ARL_Xeon"));
  const std::size_t b = graph.add_study(small_spec("ARL_Opteron"));
  graph.build_all();
  const metrics::Study graph_a = graph.take_study(a);
  const metrics::Study graph_b = graph.take_study(b);

  auto build_single = [](const StudySpec& spec) {
    StudyBuilder builder;
    return builder.targets(spec.targets)
        .base(spec.base)
        .suite(spec.suite)
        .options(spec.options)
        .build();
  };
  expect_studies_bitwise_equal(graph_a, build_single(small_spec("ARL_Xeon")));
  expect_studies_bitwise_equal(graph_b,
                               build_single(small_spec("ARL_Opteron")));
}

TEST(StudyGraph, SharedMachinesDedupProbeNodes) {
  // Ablation shape: both studies probe the same machine set, so the
  // second study's probe requests are all served by the first study's
  // nodes. Trace nodes dedup only when the base matches — here it does
  // not, so only probes share.
  const StudySpec first = small_spec("ARL_Xeon");
  const StudySpec second = small_spec("ARL_Opteron");
  StudyGraph graph;
  (void)graph.add_study(first);
  (void)graph.add_study(second);
  graph.build_all();

  // Both studies probe {ARL_Xeon, ARL_Opteron}: 2 shared probe nodes.
  EXPECT_EQ(graph.stats().studies, 2u);
  EXPECT_EQ(graph.stats().dedup_hits, 2u);
  const std::size_t items = suite_items(first.suite).size();
  // Nodes: study one = items + collect + 2 probes + items traces +
  // assemble; study two adds everything except the probes.
  EXPECT_EQ(graph.stats().nodes, 2 * (2 * items + 2) + 2);
}

TEST(StudyGraph, NoiseWorldsShareProbesAndTraces) {
  // Multiworld shape: identical specs except the noise salt. Probes and
  // traces never see the salt, so both dedup; only the ground-truth
  // campaign (and assemble) fan out per world.
  StudySpec world0 = small_spec("ARL_Xeon");
  StudySpec world1 = small_spec("ARL_Xeon");
  world1.options.executor.noise_salt = world0.options.executor.noise_salt + 1;

  StudyGraph graph;
  const std::size_t a = graph.add_study(world0);
  const std::size_t b = graph.add_study(world1);
  graph.build_all();

  const std::size_t items = suite_items(world0.suite).size();
  EXPECT_EQ(graph.stats().dedup_hits, 2 + items);

  // The worlds share signatures bitwise but observe different ground
  // truth (the salt perturbs the campaign).
  const metrics::Study study_a = graph.take_study(a);
  const metrics::Study study_b = graph.take_study(b);
  const auto& test_case = world0.suite[0];
  for (int nprocs : test_case.cpu_counts) {
    EXPECT_EQ(trace::to_text(study_a.signature(test_case.name, nprocs)),
              trace::to_text(study_b.signature(test_case.name, nprocs)));
  }
  EXPECT_NE(simulate::to_text(study_a.observations()),
            simulate::to_text(study_b.observations()));
}

TEST(StudyGraph, WarmGraphReportsAllCachedPerStudy) {
  const fs::path dir = scratch_cache("graph-warm");

  {
    StudyGraph cold;
    cold.cache(true).cache_dir(dir.string());
    const std::size_t a = cold.add_study(small_spec("ARL_Xeon"));
    const std::size_t b = cold.add_study(small_spec("ARL_Opteron"));
    cold.build_all();
    EXPECT_EQ(cold.study_stats(a).ground_truth.cache_hits, 0u);
    EXPECT_EQ(cold.study_stats(a).probes.cache_hits, 0u);
    EXPECT_EQ(cold.study_stats(a).traces.cache_hits, 0u);
    // Study b's probe nodes were computed by study a, not by the cache:
    // dedup is reported on the graph, not as per-study cache hits.
    EXPECT_EQ(cold.study_stats(b).probes.cache_hits, 0u);
    EXPECT_EQ(cold.stats().dedup_hits, 2u);
  }

  StudyGraph warm;
  warm.cache(true).cache_dir(dir.string());
  const std::size_t a = warm.add_study(small_spec("ARL_Xeon"));
  const std::size_t b = warm.add_study(small_spec("ARL_Opteron"));
  warm.build_all();
  for (std::size_t handle : {a, b}) {
    EXPECT_TRUE(warm.study_stats(handle).ground_truth.all_cached());
    EXPECT_TRUE(warm.study_stats(handle).probes.all_cached());
    EXPECT_TRUE(warm.study_stats(handle).traces.all_cached());
  }
  EXPECT_GT(warm.stats().cache_hits, 0u);

  fs::remove_all(dir);
}

TEST(StudyGraph, ProbeBatchMatchesRunProbeStage) {
  const fs::path dir = scratch_cache("graph-probe-batch");
  const std::vector<machine::MachineConfig> machines = {
      machine::find("ARL_Xeon"), machine::find("ARL_Altix")};

  StudyGraph graph;
  graph.cache(true).cache_dir(dir.string());
  // The batch shares ARL_Xeon with the study: one dedup hit.
  const std::size_t study = graph.add_study(small_spec("ARL_Opteron"));
  const std::size_t batch = graph.add_probes(machines);
  graph.build_all();
  (void)graph.take_study(study);

  EXPECT_EQ(graph.probe_stats(batch).items, machines.size());
  EXPECT_EQ(graph.stats().dedup_hits, 1u);

  const auto graph_sets = graph.probe_sets(batch);
  const auto stage_sets = run_probe_stage(
      machines, 1, ArtifactCache(dir.string()), nullptr);
  ASSERT_EQ(graph_sets.size(), stage_sets.size());
  for (const auto& [name, probe_set] : stage_sets) {
    ASSERT_TRUE(graph_sets.count(name)) << name;
    EXPECT_EQ(probes::to_text(graph_sets.at(name)),
              probes::to_text(probe_set));
  }
  fs::remove_all(dir);
}

TEST(StudyGraph, HonorsThreadBoundEndToEnd) {
  // The whole graph — campaigns included — runs on one pool: with
  // MSIM_THREADS=2 the process must never have more than two concurrent
  // scheduler workers, even though the campaign fan-out inside each
  // ground-truth node would ask for its own pool.
  ::setenv("MSIM_THREADS", "2", 1);
  reset_peak_workers();
  StudyGraph graph;
  (void)graph.add_study(small_spec("ARL_Xeon"));
  (void)graph.add_study(small_spec("ARL_Opteron"));
  graph.build_all();
  ::unsetenv("MSIM_THREADS");
  EXPECT_EQ(graph.stats().workers, 2u);
  EXPECT_GE(peak_workers(), 1u);
  EXPECT_LE(peak_workers(), 2u) << "graph build oversubscribed the pool";
}

TEST(StudyGraph, GuardsAgainstMisuse) {
  {
    StudyGraph graph;
    EXPECT_THROW(graph.build_all(), std::exception) << "empty graph";
  }
  StudyGraph graph;
  const std::size_t handle = graph.add_study(small_spec("ARL_Xeon"));
  EXPECT_THROW((void)graph.take_study(handle), std::exception)
      << "take before build";
  graph.build_all();
  EXPECT_THROW(graph.build_all(), std::exception) << "second build";
  EXPECT_THROW((void)graph.add_study(small_spec("ARL_Opteron")),
               std::exception)
      << "add after build";
  (void)graph.take_study(handle);
  EXPECT_THROW((void)graph.take_study(handle), std::exception)
      << "double take";
  EXPECT_THROW((void)graph.take_study(99), std::exception)
      << "unknown handle";
}

}  // namespace
}  // namespace msim::pipeline
