// Units, contract macros, ASCII tables, and CSV emission.
#include <gtest/gtest.h>

#include <sstream>

#include "common/check.hpp"
#include "common/csv.hpp"
#include "common/table.hpp"
#include "common/units.hpp"

namespace msim {
namespace {

TEST(Units, FormatBytes) {
  EXPECT_EQ(format_bytes(512), "512 B");
  EXPECT_EQ(format_bytes(KiB), "1 KiB");
  EXPECT_EQ(format_bytes(1536), "1.5 KiB");
  EXPECT_EQ(format_bytes(64 * KiB), "64 KiB");
  EXPECT_EQ(format_bytes(3 * MiB / 2), "1.5 MiB");
  EXPECT_EQ(format_bytes(2 * GiB), "2 GiB");
}

TEST(Units, FormatRate) {
  EXPECT_EQ(format_rate(1.5e9, "B"), "1.50 GB/s");
  EXPECT_EQ(format_rate(250.0, "B"), "250.00 B/s");
  EXPECT_EQ(format_rate(3.2e6, "FLOP"), "3.20 MFLOP/s");
}

TEST(Units, CycleSeconds) {
  EXPECT_DOUBLE_EQ(cycle_seconds(1.0), 1e-9);
  EXPECT_DOUBLE_EQ(cycle_seconds(2.0), 0.5e-9);
}

TEST(Check, RequireThrowsPreconditionError) {
  const auto boom = [] { MSIM_REQUIRE(1 == 2, "math is broken"); };
  EXPECT_THROW(boom(), precondition_error);
  try {
    boom();
  } catch (const precondition_error& error) {
    EXPECT_NE(std::string(error.what()).find("math is broken"),
              std::string::npos);
    EXPECT_NE(std::string(error.what()).find("1 == 2"), std::string::npos);
  }
}

TEST(Check, CheckThrowsInvariantError) {
  const auto boom = [] { MSIM_CHECK(false, "invariant"); };
  EXPECT_THROW(boom(), invariant_error);
}

TEST(Check, PassingChecksAreSilent) {
  EXPECT_NO_THROW(MSIM_REQUIRE(true, ""));
  EXPECT_NO_THROW(MSIM_CHECK(2 + 2 == 4, ""));
}

TEST(AsciiTable, RendersHeaderAndRows) {
  AsciiTable table({"name", "value"});
  table.add_row({"alpha", "1"});
  table.add_row({"bee", "22"});
  const std::string out = table.render();
  EXPECT_NE(out.find("| name  | value |"), std::string::npos);
  EXPECT_NE(out.find("| alpha | 1     |"), std::string::npos);
  EXPECT_NE(out.find("| bee   | 22    |"), std::string::npos);
}

TEST(AsciiTable, RightAlignment) {
  AsciiTable table({"n"});
  table.set_align(0, Align::Right);
  table.add_row({"7"});
  table.add_row({"123"});
  const std::string out = table.render();
  EXPECT_NE(out.find("|   7 |"), std::string::npos);
  EXPECT_NE(out.find("| 123 |"), std::string::npos);
}

TEST(AsciiTable, RuleSeparatesRows) {
  AsciiTable table({"x"});
  table.add_row({"a"});
  table.add_rule();
  table.add_row({"b"});
  const std::string out = table.render();
  // header rule + top + bottom + inserted = 4 horizontal rules
  std::size_t rules = 0;
  for (std::size_t pos = out.find("+---"); pos != std::string::npos;
       pos = out.find("+---", pos + 1)) {
    ++rules;
  }
  EXPECT_EQ(rules, 4u);
}

TEST(AsciiTable, RejectsBadUsage) {
  EXPECT_THROW(AsciiTable({}), precondition_error);
  AsciiTable table({"a", "b"});
  EXPECT_THROW(table.add_row({"only-one"}), precondition_error);
  EXPECT_THROW(table.set_align(5, Align::Left), precondition_error);
}

TEST(AsciiTable, NumberFormatting) {
  EXPECT_EQ(AsciiTable::num(3.14159, 2), "3.14");
  EXPECT_EQ(AsciiTable::num(63.4, 0), "63");
  EXPECT_EQ(AsciiTable::pct(18.0), "18");
}

TEST(Csv, PlainCellsUnquoted) {
  std::ostringstream out;
  CsvWriter csv(out);
  csv.row({"a", "b", "c"});
  EXPECT_EQ(out.str(), "a,b,c\n");
}

TEST(Csv, QuotesSpecialCharacters) {
  EXPECT_EQ(CsvWriter::escape("plain"), "plain");
  EXPECT_EQ(CsvWriter::escape("a,b"), "\"a,b\"");
  EXPECT_EQ(CsvWriter::escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(CsvWriter::escape("two\nlines"), "\"two\nlines\"");
}

TEST(Csv, NumericRow) {
  std::ostringstream out;
  CsvWriter csv(out);
  csv.numeric_row("label", {1.0, 2.5}, 1);
  EXPECT_EQ(out.str(), "label,1.0,2.5\n");
}

}  // namespace
}  // namespace msim
