// Ranking-quality scoring and cross-count signature scaling.
#include <gtest/gtest.h>

#include <cmath>

#include "common/check.hpp"
#include "machine/registry.hpp"
#include "metrics/ranking.hpp"
#include "test_support.hpp"
#include "trace/scaling.hpp"
#include "trace/tracer.hpp"
#include "workload/apps.hpp"

namespace msim {
namespace {

TEST(PowerLaw, ExactForPowerLaws) {
  // x(p) = 100 / p: exponent -1.
  EXPECT_NEAR(trace::power_law_scale(100.0, 1, 50.0, 2, 4), 25.0, 1e-9);
  // Constant: exponent 0.
  EXPECT_NEAR(trace::power_law_scale(7.0, 16, 7.0, 64, 256), 7.0, 1e-9);
  // Surface scaling p^(-2/3): from 32 to 128 at base 1.
  const double x32 = std::pow(32.0, -2.0 / 3.0);
  const double x64 = std::pow(64.0, -2.0 / 3.0);
  EXPECT_NEAR(trace::power_law_scale(x32, 32, x64, 64, 128),
              std::pow(128.0, -2.0 / 3.0), 1e-12);
}

TEST(PowerLaw, ZeroesPropagate) {
  EXPECT_DOUBLE_EQ(trace::power_law_scale(0.0, 1, 0.0, 2, 4), 0.0);
  EXPECT_DOUBLE_EQ(trace::power_law_scale(0.0, 1, 5.0, 2, 4), 0.0);
}

TEST(PowerLaw, RejectsBadInput) {
  EXPECT_THROW((void)trace::power_law_scale(1.0, 2, 1.0, 2, 4),
               precondition_error);  // identical counts
  EXPECT_THROW((void)trace::power_law_scale(1.0, 0, 1.0, 2, 4),
               precondition_error);
  EXPECT_THROW((void)trace::power_law_scale(-1.0, 1, 1.0, 2, 4),
               precondition_error);
}

/// Property: for every app, the scaled signature at a *traced* count must
/// closely match the genuine trace at that count (interpolation check).
class ScalingProperty : public ::testing::TestWithParam<std::string> {};

TEST_P(ScalingProperty, InterpolationMatchesRealTrace) {
  const auto& test_case = workload::find_test_case(GetParam());
  const int p0 = test_case.cpu_counts[0];
  const int p1 = test_case.cpu_counts[1];
  const int p2 = test_case.cpu_counts[2];
  const auto& study = msim::testing::shared_study();

  // Scale from the outer counts to the middle one and compare.
  const auto scaled = trace::scale_signature(
      study.signature(GetParam(), p0), study.signature(GetParam(), p2), p1);
  const auto& real = study.signature(GetParam(), p1);

  EXPECT_EQ(scaled.nprocs, p1);
  ASSERT_EQ(scaled.blocks.size(), real.blocks.size());
  for (std::size_t i = 0; i < scaled.blocks.size(); ++i) {
    const trace::BlockView s = scaled.blocks[i];
    const trace::BlockView r = real.blocks[i];
    EXPECT_NEAR(static_cast<double>(s.refs()),
                static_cast<double>(r.refs()),
                static_cast<double>(r.refs()) * 0.05)
        << s.name();
    EXPECT_NEAR(static_cast<double>(s.flops()),
                static_cast<double>(r.flops()),
                static_cast<double>(r.flops()) * 0.05)
        << s.name();
    EXPECT_NEAR(s.unit_fraction(), r.unit_fraction(), 0.05) << s.name();
    // Working-set estimates carry tracer sampling noise on both sides.
    EXPECT_NEAR(static_cast<double>(s.working_set_estimate()),
                static_cast<double>(r.working_set_estimate()),
                static_cast<double>(r.working_set_estimate()) * 0.5)
        << s.name();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Ti05, ScalingProperty,
    ::testing::Values("AVUS_Standard", "AVUS_Large", "HYCOM_Standard",
                      "OVERFLOW2_Standard", "RFCTH_Standard"));

TEST(Scaling, RejectsIncompatibleSignatures) {
  const auto& study = msim::testing::shared_study();
  const auto& avus32 = study.signature("AVUS_Standard", 32);
  const auto& avus64 = study.signature("AVUS_Standard", 64);
  const auto& hycom = study.signature("HYCOM_Standard", 59);
  EXPECT_THROW((void)trace::scale_signature(avus32, hycom, 100),
               precondition_error);
  EXPECT_THROW((void)trace::scale_signature(avus32, avus32, 100),
               precondition_error);
  EXPECT_THROW((void)trace::scale_signature(avus32, avus64, 0),
               precondition_error);
}

TEST(Scaling, FractionsRemainADistribution) {
  const auto& study = msim::testing::shared_study();
  const auto scaled = trace::scale_signature(
      study.signature("RFCTH_Standard", 16),
      study.signature("RFCTH_Standard", 64), 512);  // far extrapolation
  for (const trace::BlockView block : scaled.blocks) {
    EXPECT_GE(block.unit_fraction(), 0.0);
    EXPECT_GE(block.short_fraction(), 0.0);
    EXPECT_GE(block.random_fraction(), 0.0);
    EXPECT_NEAR(block.unit_fraction() + block.short_fraction() +
                    block.random_fraction(),
                1.0, 1e-9);
  }
}

TEST(RankingQuality, ScoresTheFullStudy) {
  const auto& study = msim::testing::shared_study();
  const auto quality =
      metrics::ranking_quality(study, metrics::Metric::P9_HplMapsNetDep);
  EXPECT_EQ(quality.configurations, 15u);
  EXPECT_GT(quality.mean_spearman, 0.8);
  EXPECT_GE(quality.top_pick_accuracy, 0.5);
  EXPECT_GE(quality.mean_pick_regret, 0.0);
  EXPECT_LT(quality.mean_pick_regret, 0.1);
}

TEST(RankingQuality, HplRanksWorseThanMetric9) {
  const auto& study = msim::testing::shared_study();
  const auto hpl = metrics::ranking_quality(study, metrics::Metric::S1_Hpl);
  const auto m9 =
      metrics::ranking_quality(study, metrics::Metric::P9_HplMapsNetDep);
  EXPECT_LT(hpl.mean_spearman, m9.mean_spearman);
  EXPECT_LT(hpl.top_pick_accuracy, m9.top_pick_accuracy);
  EXPECT_GT(hpl.mean_pick_regret, m9.mean_pick_regret);
}

TEST(RankingQuality, BatchMatchesSingles) {
  const auto& study = msim::testing::shared_study();
  const auto batch = metrics::ranking_qualities(
      study, {metrics::Metric::S3_Gups, metrics::Metric::P6_HplStreamGups});
  ASSERT_EQ(batch.size(), 2u);
  EXPECT_DOUBLE_EQ(
      batch[0].mean_spearman,
      metrics::ranking_quality(study, metrics::Metric::S3_Gups)
          .mean_spearman);
}

}  // namespace
}  // namespace msim
