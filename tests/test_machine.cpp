// Machine configs, validation rules, the registry, and text round-tripping.
#include <gtest/gtest.h>

#include "common/check.hpp"
#include "common/units.hpp"
#include "machine/config_io.hpp"
#include "machine/registry.hpp"
#include "test_support.hpp"

namespace msim::machine {
namespace {

TEST(Registry, HasTenTargetsPlusBase) {
  EXPECT_EQ(target_system_names().size(), 10u);
  EXPECT_EQ(all().size(), 11u);
  EXPECT_EQ(find(base_system_name()).name, base_system_name());
}

TEST(Registry, TargetOrderMatchesPaperTable5) {
  const auto names = target_system_names();
  EXPECT_EQ(names.front(), "ERDC_O3800");
  EXPECT_EQ(names.back(), "ARL_Opteron");
  EXPECT_EQ(names[3], "ASC_SC45");
  EXPECT_EQ(names[7], "ARL_Altix");
}

TEST(Registry, UnknownMachineThrows) {
  EXPECT_THROW((void)find("CRAY_XMP"), precondition_error);
}

TEST(Registry, ProcessorCountsMatchPaperTable2) {
  EXPECT_EQ(find("ERDC_O3800").total_processors, 504);
  EXPECT_EQ(find("MHPCC_P3").total_processors, 736);
  EXPECT_EQ(find("NAVO_P3").total_processors, 928);
  EXPECT_EQ(find("ASC_SC45").total_processors, 472);
  EXPECT_EQ(find("NAVO_655").total_processors, 2832);
  EXPECT_EQ(find("ARL_Opteron").total_processors, 2304);
}

TEST(MachineConfig, PeakAndRmax) {
  const auto& p655 = find("NAVO_655");
  EXPECT_DOUBLE_EQ(p655.peak_flops(), 1.7e9 * 4);
  EXPECT_DOUBLE_EQ(p655.rmax_flops(), 1.7e9 * 4 * 0.70);
  EXPECT_GT(p655.total_cache_bytes(), 2 * MiB);
}

/// Parameterized over every registry machine: validation passes and the
/// basic physical sanity conditions hold.
class MachineSanity : public ::testing::TestWithParam<std::string> {};

TEST_P(MachineSanity, ValidatesAndIsPhysical) {
  const MachineConfig& config = find(GetParam());
  EXPECT_NO_THROW(validate(config));
  EXPECT_GT(config.rmax_flops(), 0.0);
  EXPECT_LE(config.rmax_flops(), config.peak_flops());
  // Cache levels grow and their latency grows outward. (Bandwidth need not
  // fall monotonically level-to-level: the Altix models Itanium2's
  // L1-bypassing FP loads, where L2 is the fastest level.)
  for (std::size_t i = 1; i < config.caches.size(); ++i) {
    EXPECT_GT(config.caches[i].size_bytes, config.caches[i - 1].size_bytes);
    EXPECT_GE(config.caches[i].latency_s, config.caches[i - 1].latency_s);
  }
  // Memory is behind the last cache.
  EXPECT_LE(config.memory.unit_stride_bw,
            config.caches.back().unit_stride_bw);
  EXPECT_GE(config.memory.latency_s, config.caches.back().latency_s);
}

INSTANTIATE_TEST_SUITE_P(
    AllMachines, MachineSanity,
    ::testing::ValuesIn(msim::testing::all_machine_names()),
    [](const auto& info) {
      std::string name = info.param;
      for (char& ch : name) {
        if (ch == '.' || ch == '-') ch = '_';
      }
      return name;
    });

MachineConfig valid_config() { return find("ARL_Opteron"); }

TEST(Validation, RejectsBadProcessor) {
  auto config = valid_config();
  config.cpu.clock_ghz = 0.0;
  EXPECT_THROW(validate(config), precondition_error);
  config = valid_config();
  config.cpu.hpl_efficiency = 1.5;
  EXPECT_THROW(validate(config), precondition_error);
  config = valid_config();
  config.cpu.dependency_derate = 0.0;
  EXPECT_THROW(validate(config), precondition_error);
}

TEST(Validation, RejectsBadCaches) {
  auto config = valid_config();
  config.caches.clear();
  EXPECT_THROW(validate(config), precondition_error);

  config = valid_config();
  config.caches[0].size_bytes = 3000;  // not a power of two
  EXPECT_THROW(validate(config), precondition_error);

  config = valid_config();
  config.caches[0].random_bw = config.caches[0].unit_stride_bw * 2;
  EXPECT_THROW(validate(config), precondition_error);

  config = valid_config();
  config.caches[1].size_bytes = config.caches[0].size_bytes;  // not growing
  EXPECT_THROW(validate(config), precondition_error);
}

TEST(Validation, RejectsMemoryFasterThanCache) {
  auto config = valid_config();
  config.memory.unit_stride_bw = config.caches.back().unit_stride_bw * 2;
  EXPECT_THROW(validate(config), precondition_error);
}

TEST(Validation, RejectsBadNetwork) {
  auto config = valid_config();
  config.net.latency_s = 0.0;
  EXPECT_THROW(validate(config), precondition_error);
  config = valid_config();
  config.net.procs_per_node = 0;
  EXPECT_THROW(validate(config), precondition_error);
}

/// Parameterized round-trip: serialize -> parse -> identical behaviour.
class ConfigIoRoundTrip : public ::testing::TestWithParam<std::string> {};

TEST_P(ConfigIoRoundTrip, TextRoundTripsLosslessly) {
  const MachineConfig& original = find(GetParam());
  const std::string text = to_text(original);
  const MachineConfig parsed = from_text(text);

  EXPECT_EQ(parsed.name, original.name);
  EXPECT_EQ(parsed.architecture, original.architecture);
  EXPECT_EQ(parsed.total_processors, original.total_processors);
  EXPECT_DOUBLE_EQ(parsed.cpu.clock_ghz, original.cpu.clock_ghz);
  EXPECT_EQ(parsed.caches.size(), original.caches.size());
  for (std::size_t i = 0; i < parsed.caches.size(); ++i) {
    EXPECT_EQ(parsed.caches[i].size_bytes, original.caches[i].size_bytes);
    EXPECT_DOUBLE_EQ(parsed.caches[i].unit_stride_bw,
                     original.caches[i].unit_stride_bw);
  }
  EXPECT_DOUBLE_EQ(parsed.memory.random_bw, original.memory.random_bw);
  EXPECT_EQ(parsed.net.eager_threshold_bytes,
            original.net.eager_threshold_bytes);
  EXPECT_DOUBLE_EQ(parsed.system_efficiency, original.system_efficiency);
  // And the re-serialization is textually identical (canonical form).
  EXPECT_EQ(to_text(parsed), text);
}

INSTANTIATE_TEST_SUITE_P(
    AllMachines, ConfigIoRoundTrip,
    ::testing::ValuesIn(msim::testing::all_machine_names()),
    [](const auto& info) {
      std::string name = info.param;
      for (char& ch : name) {
        if (ch == '.' || ch == '-') ch = '_';
      }
      return name;
    });

TEST(ConfigIo, ParseErrors) {
  EXPECT_THROW((void)from_text("name = x\nname = y\n"), precondition_error);
  EXPECT_THROW((void)from_text("no equals sign here"), precondition_error);
  EXPECT_THROW((void)from_text("name = only-a-name\n"), precondition_error);

  std::string text = to_text(find("ARL_Xeon"));
  text += "mystery.key = 42\n";
  EXPECT_THROW((void)from_text(text), precondition_error);
}

TEST(ConfigIo, ParseBadNumbers) {
  std::string text = to_text(find("ARL_Xeon"));
  const auto pos = text.find("cpu.clock_ghz = ");
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, text.find('\n', pos) - pos, "cpu.clock_ghz = fast");
  EXPECT_THROW((void)from_text(text), precondition_error);
}

TEST(ConfigIo, CommentsAndBlankLinesIgnored) {
  std::string text = "# leading comment\n\n" + to_text(find("ASC_SC45"));
  text += "\n  # trailing comment\n";
  EXPECT_EQ(from_text(text).name, "ASC_SC45");
}

}  // namespace
}  // namespace msim::machine
