// Simple metrics (Equation 1), the metric catalog, and the balanced rating.
#include <gtest/gtest.h>

#include "common/check.hpp"
#include "metrics/balanced_rating.hpp"
#include "metrics/metric_set.hpp"
#include "metrics/simple.hpp"
#include "probes/synthetic.hpp"
#include "test_support.hpp"

namespace msim::metrics {
namespace {

TEST(Eq1, FasterTargetPredictsShorterTime) {
  // Target twice as fast as base -> half the time.
  EXPECT_DOUBLE_EQ(eq1_predict(1000.0, 1.0, 2.0), 500.0);
  EXPECT_DOUBLE_EQ(eq1_predict(1000.0, 2.0, 1.0), 2000.0);
  EXPECT_DOUBLE_EQ(eq1_predict(1000.0, 3.0, 3.0), 1000.0);
}

TEST(Eq1, RejectsBadInput) {
  EXPECT_THROW((void)eq1_predict(0.0, 1.0, 1.0), precondition_error);
  EXPECT_THROW((void)eq1_predict(1.0, 0.0, 1.0), precondition_error);
  EXPECT_THROW((void)eq1_predict(1.0, 1.0, -1.0), precondition_error);
}

TEST(SimpleMetrics, RatesComeFromProbeSet) {
  probes::ProbeSet set;
  set.hpl_rmax = 1.0;
  set.stream_bw = 2.0;
  set.gups_bw = 3.0;
  EXPECT_DOUBLE_EQ(simple_rate(set, SimpleMetric::Hpl), 1.0);
  EXPECT_DOUBLE_EQ(simple_rate(set, SimpleMetric::Stream), 2.0);
  EXPECT_DOUBLE_EQ(simple_rate(set, SimpleMetric::Gups), 3.0);
  EXPECT_EQ(to_string(SimpleMetric::Gups), "GUPS");
}

TEST(MetricSet, CatalogShape) {
  EXPECT_EQ(paper_metrics().size(), 9u);
  EXPECT_EQ(all_metrics().size(), 11u);
  EXPECT_EQ(row_label(Metric::S1_Hpl), "1-S");
  EXPECT_EQ(row_label(Metric::P9_HplMapsNetDep), "9-P");
  EXPECT_EQ(description(Metric::P6_HplStreamGups), "HPL+STREAM+GUPS");
  EXPECT_EQ(kind(Metric::S2_Stream), MetricKind::Simple);
  EXPECT_EQ(kind(Metric::P7_HplMaps), MetricKind::Predictive);
  EXPECT_EQ(kind(Metric::BalancedEqual), MetricKind::Composite);
}

TEST(MetricSet, PredictiveMapping) {
  EXPECT_FALSE(predictive_of(Metric::S1_Hpl).has_value());
  EXPECT_FALSE(predictive_of(Metric::BalancedFitted).has_value());
  EXPECT_EQ(predictive_of(Metric::P8_HplMapsNet),
            convolve::PredictiveMetric::M8_HplMapsNet);
}

probes::ProbeSet fake_probe_set(const std::string& name, double hpl,
                                double stream, double allreduce_s) {
  probes::ProbeSet set;
  set.machine = name;
  set.hpl_rmax = hpl;
  set.stream_bw = stream;
  set.gups_bw = stream / 10;
  set.net.latency_s = 1e-6;
  set.net.bandwidth = 1e9;
  set.net.allreduce_small_s = allreduce_s;
  return set;
}

TEST(BalancedRating, NormalizesToBestSystem) {
  const std::vector<probes::ProbeSet> sets = {
      fake_probe_set("fast_cpu", 10.0, 1.0, 1e-4),
      fake_probe_set("fast_mem", 1.0, 10.0, 1e-4),
  };
  const BalancedRating rating(sets, {1.0, 1.0, 1.0});
  // Each machine wins one category and ties the third:
  // fast_cpu: (1, 0.1, 1)/3 = 0.7; fast_mem the same.
  EXPECT_NEAR(rating.score("fast_cpu"), 0.7, 1e-9);
  EXPECT_NEAR(rating.score("fast_mem"), 0.7, 1e-9);
}

TEST(BalancedRating, WeightsAreNormalized) {
  const std::vector<probes::ProbeSet> sets = {
      fake_probe_set("a", 1.0, 1.0, 1.0)};
  const BalancedRating rating(sets, {2.0, 2.0, 4.0});
  EXPECT_NEAR(rating.weights()[0], 0.25, 1e-12);
  EXPECT_NEAR(rating.weights()[2], 0.5, 1e-12);
}

TEST(BalancedRating, PredictUsesScoreRatio) {
  const std::vector<probes::ProbeSet> sets = {
      fake_probe_set("base", 1.0, 1.0, 1e-3),
      fake_probe_set("twice", 2.0, 2.0, 5e-4),
  };
  const BalancedRating rating(sets, {1.0, 1.0, 1.0});
  // "twice" dominates every category 2:1 -> predicted twice as fast.
  EXPECT_NEAR(rating.predict(1000.0, "base", "twice"), 500.0, 1e-6);
}

TEST(BalancedRating, UnknownMachineThrows) {
  const std::vector<probes::ProbeSet> sets = {
      fake_probe_set("a", 1.0, 1.0, 1.0)};
  const BalancedRating rating(sets, {1.0, 1.0, 1.0});
  EXPECT_THROW((void)rating.score("nope"), precondition_error);
}

TEST(BalancedRating, FitRecoversDominantCategory) {
  // Build machines whose true speed ratio follows STREAM exactly; the fit
  // should put (nearly) all weight on the STREAM category.
  std::vector<probes::ProbeSet> sets = {
      fake_probe_set("base", 5.0, 1.0, 1e-3),
      fake_probe_set("m1", 1.0, 2.0, 1e-3),
      fake_probe_set("m2", 10.0, 4.0, 1e-3),
      fake_probe_set("m3", 2.0, 0.5, 1e-3),
  };
  std::vector<SpeedObservation> speeds;
  for (const auto& set : sets) {
    if (set.machine == "base") continue;
    speeds.push_back(SpeedObservation{
        .machine = set.machine,
        .speed_vs_base = set.stream_bw / 1.0});  // speed == STREAM ratio
  }
  const auto weights = fit_balanced_weights(sets, "base", speeds);
  EXPECT_GT(weights[1], 0.8) << "STREAM should dominate the fit";
}

TEST(BalancedRating, DuplicateMachineRejected) {
  std::vector<probes::ProbeSet> sets = {fake_probe_set("a", 1, 1, 1),
                                        fake_probe_set("a", 2, 2, 2)};
  EXPECT_THROW(BalancedRating(sets, {1, 1, 1}), precondition_error);
}

}  // namespace
}  // namespace msim::metrics
