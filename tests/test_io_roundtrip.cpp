// Round-trip tests for the archive formats: application signatures and
// probe sets must survive serialize -> parse with full predictive fidelity.
#include <gtest/gtest.h>

#include "common/check.hpp"
#include "convolve/convolver.hpp"
#include "machine/registry.hpp"
#include "probes/probe_io.hpp"
#include "probes/synthetic.hpp"
#include "test_support.hpp"
#include "trace/signature_io.hpp"
#include "trace/tracer.hpp"
#include "workload/apps.hpp"

namespace msim {
namespace {

TEST(SignatureIo, RoundTripsAllFields) {
  const auto app = workload::make_overflow2_standard(48);
  const auto original =
      trace::trace_application(app, machine::base_system_name());
  const auto parsed =
      trace::signature_from_text(trace::to_text(original));

  EXPECT_EQ(parsed.app, original.app);
  EXPECT_EQ(parsed.nprocs, original.nprocs);
  EXPECT_EQ(parsed.timesteps, original.timesteps);
  EXPECT_EQ(parsed.traced_on, original.traced_on);
  ASSERT_EQ(parsed.blocks.size(), original.blocks.size());
  for (std::size_t i = 0; i < parsed.blocks.size(); ++i) {
    const trace::BlockView a = parsed.blocks[i];
    const trace::BlockView b = original.blocks[i];
    EXPECT_EQ(a.name(), b.name());
    EXPECT_EQ(a.phase(), b.phase());
    EXPECT_EQ(a.flops(), b.flops());
    EXPECT_EQ(a.refs(), b.refs());
    EXPECT_EQ(a.working_set_estimate(), b.working_set_estimate());
    EXPECT_EQ(a.working_set_is_lower_bound(),
              b.working_set_is_lower_bound());
    EXPECT_EQ(a.dependency_limited(), b.dependency_limited());
    EXPECT_NEAR(a.unit_fraction(), b.unit_fraction(), 1e-6);
    EXPECT_NEAR(a.random_fraction(), b.random_fraction(), 1e-6);
  }
  ASSERT_EQ(parsed.comm.size(), original.comm.size());
  for (std::size_t p = 0; p < parsed.comm.size(); ++p) {
    ASSERT_EQ(parsed.comm[p].events.size(), original.comm[p].events.size());
    for (std::size_t e = 0; e < parsed.comm[p].events.size(); ++e) {
      EXPECT_EQ(parsed.comm[p].events[e].type,
                original.comm[p].events[e].type);
      EXPECT_EQ(parsed.comm[p].events[e].bytes,
                original.comm[p].events[e].bytes);
      EXPECT_EQ(parsed.comm[p].events[e].count,
                original.comm[p].events[e].count);
    }
  }
}

TEST(SignatureIo, ParseErrors) {
  EXPECT_THROW((void)trace::signature_from_text("garbage without equals"),
               precondition_error);
  EXPECT_THROW((void)trace::signature_from_text("app = x\n"),
               precondition_error);  // missing fields
  const auto app = workload::make_rfcth_standard(16);
  std::string text = trace::to_text(
      trace::trace_application(app, machine::base_system_name()));
  text += "unexpected.key = 1\n";
  EXPECT_THROW((void)trace::signature_from_text(text), precondition_error);
}

/// Probe-set round trips for every machine, checked through the convolver:
/// predictions from a parsed set must match the original bit-for-bit in
/// effect (same conv times for a reference signature).
class ProbeIoRoundTrip : public ::testing::TestWithParam<std::string> {};

TEST_P(ProbeIoRoundTrip, PreservesPredictiveBehaviour) {
  const auto original =
      probes::run_probe_suite(machine::find(GetParam()));
  const auto parsed = probes::probe_set_from_text(probes::to_text(original));

  EXPECT_EQ(parsed.machine, original.machine);
  EXPECT_DOUBLE_EQ(parsed.hpl_rmax, original.hpl_rmax);
  EXPECT_DOUBLE_EQ(parsed.stream_bw, original.stream_bw);
  EXPECT_DOUBLE_EQ(parsed.gups_bw, original.gups_bw);
  EXPECT_EQ(parsed.maps_unit.points.size(),
            original.maps_unit.points.size());
  EXPECT_DOUBLE_EQ(parsed.net.allreduce_small_s,
                   original.net.allreduce_small_s);

  static const auto signature = trace::trace_application(
      workload::make_avus_standard(64), machine::base_system_name());
  for (auto metric : {convolve::PredictiveMetric::M6_HplStreamGups,
                      convolve::PredictiveMetric::M9_HplMapsNetDep}) {
    EXPECT_DOUBLE_EQ(convolve::convolved_time(signature, parsed, metric),
                     convolve::convolved_time(signature, original, metric));
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllMachines, ProbeIoRoundTrip,
    ::testing::ValuesIn(msim::testing::all_machine_names()),
    [](const auto& info) {
      std::string name = info.param;
      for (char& ch : name) {
        if (ch == '.' || ch == '-') ch = '_';
      }
      return name;
    });

TEST(ProbeIo, ParseErrors) {
  EXPECT_THROW((void)probes::probe_set_from_text("machine = x\n"),
               precondition_error);
  auto text =
      probes::to_text(probes::run_probe_suite(machine::find("ARL_Xeon")));
  text += "bogus = 7\n";
  EXPECT_THROW((void)probes::probe_set_from_text(text), precondition_error);
}

}  // namespace
}  // namespace msim
