// Bootstrap confidence intervals.
#include <gtest/gtest.h>

#include <vector>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "stats/bootstrap.hpp"
#include "stats/summary.hpp"

namespace msim::stats {
namespace {

TEST(Bootstrap, PointEstimateIsTheSampleStatistic) {
  const std::vector<double> values = {1.0, 2.0, 3.0, 4.0};
  const auto interval = bootstrap_mean_ci(values);
  EXPECT_DOUBLE_EQ(interval.point, 2.5);
  EXPECT_LE(interval.lower, interval.point);
  EXPECT_GE(interval.upper, interval.point);
}

TEST(Bootstrap, DegenerateSampleHasZeroWidth) {
  const std::vector<double> constant(50, 7.0);
  const auto interval = bootstrap_mean_ci(constant);
  EXPECT_DOUBLE_EQ(interval.lower, 7.0);
  EXPECT_DOUBLE_EQ(interval.upper, 7.0);
}

TEST(Bootstrap, CoversTheTrueMeanAtRoughlyTheNominalRate) {
  // Draw many samples from a known distribution and count how often the
  // 90% CI covers the true mean; expect roughly 90% (loose bounds).
  Rng rng(5150);
  int covered = 0;
  const int trials = 200;
  for (int t = 0; t < trials; ++t) {
    std::vector<double> sample(40);
    for (auto& value : sample) value = rng.normal(10.0, 3.0);
    const auto interval =
        bootstrap_mean_ci(sample, 0.90, 500, 900 + t);
    if (interval.lower <= 10.0 && 10.0 <= interval.upper) ++covered;
  }
  EXPECT_GT(covered, trials * 0.80);
  EXPECT_LT(covered, trials * 0.99);
}

TEST(Bootstrap, WiderConfidenceGivesWiderInterval) {
  Rng rng(17);
  std::vector<double> sample(60);
  for (auto& value : sample) value = rng.uniform(0.0, 100.0);
  const auto narrow = bootstrap_mean_ci(sample, 0.50);
  const auto wide = bootstrap_mean_ci(sample, 0.99);
  EXPECT_LT(narrow.upper - narrow.lower, wide.upper - wide.lower);
}

TEST(Bootstrap, DeterministicPerSeed) {
  const std::vector<double> values = {3.0, 1.0, 4.0, 1.0, 5.0, 9.0};
  const auto a = bootstrap_mean_ci(values, 0.95, 500, 42);
  const auto b = bootstrap_mean_ci(values, 0.95, 500, 42);
  EXPECT_DOUBLE_EQ(a.lower, b.lower);
  EXPECT_DOUBLE_EQ(a.upper, b.upper);
}

TEST(Bootstrap, CustomStatistic) {
  const std::vector<double> values = {1.0, 2.0, 100.0};
  const auto interval = bootstrap_ci(
      values,
      [](std::span<const double> sample) {
        return msim::stats::max(sample);
      },
      0.95, 200);
  EXPECT_DOUBLE_EQ(interval.point, 100.0);
  EXPECT_LE(interval.upper, 100.0);  // max never exceeds the sample max
}

TEST(Bootstrap, RejectsBadInput) {
  const std::vector<double> values = {1.0};
  EXPECT_THROW((void)bootstrap_mean_ci({}), precondition_error);
  EXPECT_THROW((void)bootstrap_mean_ci(values, 1.5), precondition_error);
  EXPECT_THROW((void)bootstrap_mean_ci(values, 0.9, 2), precondition_error);
}

}  // namespace
}  // namespace msim::stats
