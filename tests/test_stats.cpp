// Summary statistics, Equation-2 error, correlation measures.
#include <gtest/gtest.h>

#include <vector>

#include "common/check.hpp"
#include "common/rng.hpp"
#include "stats/correlation.hpp"
#include "stats/summary.hpp"

namespace msim::stats {
namespace {

TEST(Summary, Equation2SignConvention) {
  // "Negative error indicates the prediction was faster than the actual
  // runtime" (paper Section 3).
  EXPECT_LT(signed_percent_error(50.0, 100.0), 0.0);
  EXPECT_GT(signed_percent_error(150.0, 100.0), 0.0);
  EXPECT_DOUBLE_EQ(signed_percent_error(100.0, 100.0), 0.0);
  EXPECT_DOUBLE_EQ(signed_percent_error(120.0, 100.0), 20.0);
}

TEST(Summary, AbsoluteErrorPreventsCancellation) {
  EXPECT_DOUBLE_EQ(absolute_percent_error(50.0, 100.0), 50.0);
  EXPECT_DOUBLE_EQ(absolute_percent_error(150.0, 100.0), 50.0);
}

TEST(Summary, ErrorRejectsNonPositiveMeasured) {
  EXPECT_THROW((void)signed_percent_error(1.0, 0.0), precondition_error);
  EXPECT_THROW((void)signed_percent_error(1.0, -5.0), precondition_error);
}

TEST(Summary, MeanAndStddev) {
  const std::vector<double> values = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_DOUBLE_EQ(mean(values), 5.0);
  EXPECT_NEAR(population_stddev(values), 2.0, 1e-12);
  EXPECT_NEAR(sample_stddev(values), 2.138, 1e-3);
}

TEST(Summary, SingleValueStddevIsZero) {
  const std::vector<double> one = {42.0};
  EXPECT_DOUBLE_EQ(sample_stddev(one), 0.0);
}

TEST(Summary, EmptyInputsThrow) {
  const std::vector<double> empty;
  EXPECT_THROW((void)mean(empty), precondition_error);
  EXPECT_THROW((void)sample_stddev(empty), precondition_error);
  EXPECT_THROW((void)median({}), precondition_error);
  EXPECT_THROW((void)min(empty), precondition_error);
  EXPECT_THROW((void)geometric_mean(empty), precondition_error);
}

TEST(Summary, MedianOddAndEven) {
  EXPECT_DOUBLE_EQ(median({3.0, 1.0, 2.0}), 2.0);
  EXPECT_DOUBLE_EQ(median({4.0, 1.0, 3.0, 2.0}), 2.5);
}

TEST(Summary, MinMax) {
  const std::vector<double> values = {3.0, -1.0, 7.0};
  EXPECT_DOUBLE_EQ(min(values), -1.0);
  EXPECT_DOUBLE_EQ(max(values), 7.0);
}

TEST(Summary, GeometricMean) {
  const std::vector<double> values = {1.0, 4.0, 16.0};
  EXPECT_NEAR(geometric_mean(values), 4.0, 1e-12);
  const std::vector<double> with_zero = {1.0, 0.0};
  EXPECT_THROW((void)geometric_mean(with_zero), precondition_error);
}

/// Property: Welford accumulator matches the two-pass formulas for random
/// inputs of many sizes.
class WelfordProperty : public ::testing::TestWithParam<int> {};

TEST_P(WelfordProperty, MatchesTwoPass) {
  Rng rng(1000 + GetParam());
  std::vector<double> values;
  RunningStats running;
  for (int i = 0; i < GetParam(); ++i) {
    const double value = rng.uniform(-50.0, 50.0);
    values.push_back(value);
    running.add(value);
  }
  EXPECT_EQ(running.count(), values.size());
  EXPECT_NEAR(running.mean(), mean(values), 1e-9);
  EXPECT_NEAR(running.sample_stddev(), sample_stddev(values), 1e-9);
  EXPECT_NEAR(running.population_stddev(), population_stddev(values), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Sizes, WelfordProperty,
                         ::testing::Values(1, 2, 3, 10, 100, 1000, 4096));

TEST(Correlation, PearsonPerfectLines) {
  const std::vector<double> x = {1, 2, 3, 4, 5};
  const std::vector<double> up = {2, 4, 6, 8, 10};
  const std::vector<double> down = {5, 4, 3, 2, 1};
  EXPECT_NEAR(pearson(x, up), 1.0, 1e-12);
  EXPECT_NEAR(pearson(x, down), -1.0, 1e-12);
}

TEST(Correlation, PearsonConstantSeriesIsZero) {
  const std::vector<double> x = {1, 2, 3};
  const std::vector<double> flat = {7, 7, 7};
  EXPECT_DOUBLE_EQ(pearson(x, flat), 0.0);
}

TEST(Correlation, PearsonAffineInvariance) {
  Rng rng(77);
  std::vector<double> x, y;
  for (int i = 0; i < 50; ++i) {
    x.push_back(rng.uniform());
    y.push_back(rng.uniform());
  }
  const double base = pearson(x, y);
  std::vector<double> scaled;
  for (double value : x) scaled.push_back(3.0 * value - 10.0);
  EXPECT_NEAR(pearson(scaled, y), base, 1e-9);
}

TEST(Correlation, SpearmanMonotoneNonlinear) {
  const std::vector<double> x = {1, 2, 3, 4, 5};
  const std::vector<double> cubes = {1, 8, 27, 64, 125};
  EXPECT_NEAR(spearman(x, cubes), 1.0, 1e-12);
  // Pearson on the same data is below 1 (nonlinear)...
  EXPECT_LT(pearson(x, cubes), 1.0);
}

TEST(Correlation, SpearmanHandlesTies) {
  const std::vector<double> x = {1, 2, 2, 3};
  const std::vector<double> y = {10, 20, 20, 30};
  EXPECT_NEAR(spearman(x, y), 1.0, 1e-12);
}

TEST(Correlation, KendallTau) {
  const std::vector<double> x = {1, 2, 3, 4};
  const std::vector<double> y = {1, 3, 2, 4};
  // 5 concordant pairs, 1 discordant -> tau = 4/6.
  EXPECT_NEAR(kendall_tau(x, y), 2.0 / 3.0, 1e-12);
}

TEST(Correlation, MismatchedLengthsThrow) {
  const std::vector<double> x = {1, 2, 3};
  const std::vector<double> y = {1, 2};
  EXPECT_THROW((void)pearson(x, y), precondition_error);
  EXPECT_THROW((void)spearman(x, y), precondition_error);
  EXPECT_THROW((void)kendall_tau(x, y), precondition_error);
}

}  // namespace
}  // namespace msim::stats
