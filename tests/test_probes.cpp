// The synthetic probe suite: probes measure the machine models the way real
// probes measure real machines, so their results must track the configured
// hardware parameters.
#include <gtest/gtest.h>

#include <map>

#include "common/check.hpp"
#include "common/units.hpp"
#include "machine/registry.hpp"
#include "probes/synthetic.hpp"
#include "simulate/executor.hpp"
#include "test_support.hpp"

namespace msim::probes {
namespace {

/// Probe suites are deterministic and cheap enough to cache per machine.
const ProbeSet& cached_suite(const std::string& machine) {
  static std::map<std::string, ProbeSet> cache;
  auto it = cache.find(machine);
  if (it == cache.end()) {
    it = cache.emplace(machine,
                       run_probe_suite(machine::find(machine))).first;
  }
  return it->second;
}

class ProbeProperty : public ::testing::TestWithParam<std::string> {};

TEST_P(ProbeProperty, HplReportsRmax) {
  const auto& machine = machine::find(GetParam());
  EXPECT_NEAR(cached_suite(GetParam()).hpl_rmax, machine.rmax_flops(),
              machine.rmax_flops() * 0.01);
}

TEST_P(ProbeProperty, StreamSeesContendedMainMemory) {
  const auto& machine = machine::find(GetParam());
  const double stream = cached_suite(GetParam()).stream_bw;
  // STREAM runs from main memory on a loaded node: at or below the
  // contended memory bandwidth, and never above the raw one.
  EXPECT_LE(stream, machine.memory.unit_stride_bw * 1.01);
  const double contended =
      simulate::apply_contention(machine).memory.unit_stride_bw;
  EXPECT_NEAR(stream, contended, contended * 0.15);
}

TEST_P(ProbeProperty, GupsIsFarBelowStream) {
  const auto& set = cached_suite(GetParam());
  EXPECT_LT(set.gups_bw, set.stream_bw * 0.5);
  EXPECT_GT(set.gups_bw, 0.0);
}

TEST_P(ProbeProperty, MapsCurvesBracketStreamAndGups) {
  const auto& set = cached_suite(GetParam());
  // The right-hand end of the unit MAPS curve is the STREAM point, the
  // right-hand end of the random curve the GUPS point (paper Section 3).
  const std::uint64_t big = set.maps_unit.points.back().working_set_bytes;
  EXPECT_NEAR(set.maps_unit.bandwidth_at(big), set.stream_bw,
              set.stream_bw * 0.25);
  EXPECT_NEAR(set.maps_random.bandwidth_at(big), set.gups_bw,
              set.gups_bw * 0.5);
  // The left-hand (cache) end is faster than the right-hand (memory) end.
  const std::uint64_t small = set.maps_unit.points.front().working_set_bytes;
  EXPECT_GT(set.maps_unit.bandwidth_at(small),
            set.maps_unit.bandwidth_at(big));
}

TEST_P(ProbeProperty, EnhancedCurvesNeverBeatStandard) {
  const auto& set = cached_suite(GetParam());
  for (const auto& point : set.maps_unit.points) {
    EXPECT_LE(set.maps_unit_dep.bandwidth_at(point.working_set_bytes),
              set.maps_unit.bandwidth_at(point.working_set_bytes) * 1.001)
        << format_bytes(point.working_set_bytes);
    EXPECT_LE(set.maps_random_dep.bandwidth_at(point.working_set_bytes),
              set.maps_random.bandwidth_at(point.working_set_bytes) * 1.001);
  }
}

TEST_P(ProbeProperty, NetbenchMatchesConfiguredLink) {
  const auto& machine = machine::find(GetParam());
  const auto& net = cached_suite(GetParam()).net;
  EXPECT_NEAR(net.latency_s,
              machine.net.latency_s + machine.net.per_message_overhead_s,
              1e-9);
  // Large-message bandwidth approaches the configured link rate.
  EXPECT_GT(net.bandwidth, machine.net.bandwidth * 0.5);
  EXPECT_LE(net.bandwidth, machine.net.bandwidth * 1.01);
  EXPECT_GT(net.allreduce_small_s, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    AllMachines, ProbeProperty,
    ::testing::ValuesIn(msim::testing::all_machine_names()),
    [](const auto& info) {
      std::string name = info.param;
      for (char& ch : name) {
        if (ch == '.' || ch == '-') ch = '_';
      }
      return name;
    });

TEST(Probes, MapsSweepCoversCaches) {
  const auto sizes = default_maps_sizes();
  EXPECT_GE(sizes.size(), 20u);
  EXPECT_LE(sizes.front(), 4 * KiB);
  EXPECT_GE(sizes.back(), 128 * MiB);
  for (std::size_t i = 1; i < sizes.size(); ++i) {
    EXPECT_GT(sizes[i], sizes[i - 1]);  // strictly ascending
  }
}

TEST(Probes, StreamReflectsMachineOrdering) {
  // The Opteron's on-die controller beats the Colony p690's loaded bus.
  EXPECT_GT(cached_suite("ARL_Opteron").stream_bw,
            cached_suite("MHPCC_690_1.3").stream_bw * 2);
}

TEST(Probes, Figure1Crossovers) {
  // The shape the paper plots: p655 wins in L1, Altix mid-cache, Opteron
  // from main memory.
  const auto& opteron = cached_suite("ARL_Opteron");
  const auto& altix = cached_suite("ARL_Altix");
  const auto& p655 = cached_suite("NAVO_655");

  EXPECT_GT(p655.maps_unit.bandwidth_at(4 * KiB),
            altix.maps_unit.bandwidth_at(4 * KiB));
  EXPECT_GT(p655.maps_unit.bandwidth_at(4 * KiB),
            opteron.maps_unit.bandwidth_at(4 * KiB));

  EXPECT_GT(altix.maps_unit.bandwidth_at(512 * KiB),
            p655.maps_unit.bandwidth_at(512 * KiB));
  EXPECT_GT(altix.maps_unit.bandwidth_at(512 * KiB),
            opteron.maps_unit.bandwidth_at(512 * KiB));

  EXPECT_GT(opteron.maps_unit.bandwidth_at(256 * MiB),
            altix.maps_unit.bandwidth_at(256 * MiB));
  EXPECT_GT(opteron.maps_unit.bandwidth_at(256 * MiB),
            p655.maps_unit.bandwidth_at(256 * MiB));
}

TEST(MapsCurve, InterpolationBetweenPoints) {
  MapsCurve curve;
  curve.points = {{1024, 8e9}, {4096, 2e9}};
  // Log-log midpoint of (1K, 8G) and (4K, 2G) is (2K, 4G).
  EXPECT_NEAR(curve.bandwidth_at(2048), 4e9, 1e6);
  // Clamping at the ends.
  EXPECT_DOUBLE_EQ(curve.bandwidth_at(1), 8e9);
  EXPECT_DOUBLE_EQ(curve.bandwidth_at(1 << 30), 2e9);
  // Exact hits return the measured value.
  EXPECT_DOUBLE_EQ(curve.bandwidth_at(1024), 8e9);
  EXPECT_DOUBLE_EQ(curve.bandwidth_at(4096), 2e9);
}

TEST(MapsCurve, EmptyCurveThrows) {
  MapsCurve curve;
  EXPECT_THROW((void)curve.bandwidth_at(1024), precondition_error);
  curve.points = {{1024, 1e9}};
  EXPECT_THROW((void)curve.bandwidth_at(0), precondition_error);
}

TEST(Probes, SuitesRunForAllMachines) {
  const auto sets = run_probe_suites(machine::targets());
  EXPECT_EQ(sets.size(), 10u);
  for (const auto& set : sets) {
    EXPECT_FALSE(set.machine.empty());
    EXPECT_GT(set.hpl_rmax, 0.0);
  }
}

}  // namespace
}  // namespace msim::probes
