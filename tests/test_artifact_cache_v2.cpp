// Artifact cache v2: the persistent index, the LRU size cap, the framed
// binary probe encoding, and — above all — fault injection. Every way an
// entry or the index can be damaged (truncation, bit flips, loss,
// garbage) must degrade to a cache miss and self-heal, never crash and
// never return wrong data.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <limits>
#include <random>
#include <string>

#include "common/check.hpp"
#include "machine/registry.hpp"
#include "obs/registry.hpp"
#include "pipeline/artifact_cache.hpp"
#include "pipeline/study_builder.hpp"
#include "probes/probe_io.hpp"
#include "probes/synthetic.hpp"

namespace msim::pipeline {
namespace {

namespace fs = std::filesystem;

/// Fresh scratch cache directory, unique per test.
fs::path scratch_cache(const std::string& tag) {
  const fs::path dir = fs::temp_directory_path() / ("msim-test-" + tag);
  fs::remove_all(dir);
  return dir;
}

std::string read_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  return content;
}

void write_file(const fs::path& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << content;
}

std::uint64_t counter_value(const char* name) {
  return obs::Registry::instance().counter(name).value();
}

/// A synthetic probe set with randomized MAPS curves; `salt` varies every
/// field so distinct salts give distinct payloads.
probes::ProbeSet synthetic_probe_set(std::uint64_t salt) {
  std::mt19937_64 rng(salt);
  std::uniform_real_distribution<double> bw(1e6, 1e12);
  std::uniform_int_distribution<std::uint64_t> ws(1024, 1ull << 34);
  std::uniform_int_distribution<int> npoints(0, 40);

  auto curve = [&](memsim::StrideClass stride, bool dep) {
    probes::MapsCurve result;
    result.stride = stride;
    result.dependency_limited = dep;
    const int points = npoints(rng);
    for (int i = 0; i < points; ++i) {
      result.points.push_back({ws(rng), bw(rng)});
    }
    return result;
  };

  probes::ProbeSet set;
  set.machine = "Synthetic_" + std::to_string(salt);
  set.hpl_rmax = bw(rng);
  set.stream_bw = bw(rng);
  set.gups_bw = bw(rng);
  set.maps_unit = curve(memsim::StrideClass::Unit, false);
  set.maps_random = curve(memsim::StrideClass::Random, false);
  set.maps_unit_dep = curve(memsim::StrideClass::Unit, true);
  set.maps_random_dep = curve(memsim::StrideClass::Random, true);
  set.net.latency_s = bw(rng) * 1e-15;
  set.net.bandwidth = bw(rng);
  set.net.allreduce_small_s = bw(rng) * 1e-14;
  return set;
}

bool bitwise_equal(double a, double b) {
  return std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b);
}

void expect_probe_sets_bitwise_equal(const probes::ProbeSet& a,
                                     const probes::ProbeSet& b) {
  EXPECT_EQ(a.machine, b.machine);
  EXPECT_TRUE(bitwise_equal(a.hpl_rmax, b.hpl_rmax));
  EXPECT_TRUE(bitwise_equal(a.stream_bw, b.stream_bw));
  EXPECT_TRUE(bitwise_equal(a.gups_bw, b.gups_bw));
  auto expect_curve = [](const probes::MapsCurve& x,
                         const probes::MapsCurve& y) {
    EXPECT_EQ(x.stride, y.stride);
    EXPECT_EQ(x.dependency_limited, y.dependency_limited);
    ASSERT_EQ(x.points.size(), y.points.size());
    for (std::size_t i = 0; i < x.points.size(); ++i) {
      EXPECT_EQ(x.points[i].working_set_bytes,
                y.points[i].working_set_bytes);
      EXPECT_TRUE(
          bitwise_equal(x.points[i].bandwidth, y.points[i].bandwidth));
    }
  };
  expect_curve(a.maps_unit, b.maps_unit);
  expect_curve(a.maps_random, b.maps_random);
  expect_curve(a.maps_unit_dep, b.maps_unit_dep);
  expect_curve(a.maps_random_dep, b.maps_random_dep);
  EXPECT_TRUE(bitwise_equal(a.net.latency_s, b.net.latency_s));
  EXPECT_TRUE(bitwise_equal(a.net.bandwidth, b.net.bandwidth));
  EXPECT_TRUE(
      bitwise_equal(a.net.allreduce_small_s, b.net.allreduce_small_s));
}

// ---------------------------------------------------------------------
// Binary probe encoding: round-trip fidelity and migration compatibility.
// ---------------------------------------------------------------------

TEST(ProbeBinaryIo, RoundTripIsBitwiseForRandomizedCurves) {
  for (std::uint64_t salt = 1; salt <= 50; ++salt) {
    const probes::ProbeSet original = synthetic_probe_set(salt);
    const std::string encoded = probes::to_binary(original);
    const probes::ProbeSet decoded = probes::probe_set_from_binary(encoded);
    expect_probe_sets_bitwise_equal(original, decoded);
    // And through the sniffing entry point too.
    expect_probe_sets_bitwise_equal(
        original, probes::probe_set_from_artifact(encoded));
  }
}

TEST(ProbeBinaryIo, V1TextArtifactStillLoads) {
  // Migration compatibility: an artifact written by the old text code
  // must keep loading through the new artifact entry point.
  const probes::ProbeSet original =
      synthetic_probe_set(/*salt=*/20240507);
  const std::string v1_text = probes::to_text(original);
  const probes::ProbeSet decoded = probes::probe_set_from_artifact(v1_text);
  expect_probe_sets_bitwise_equal(original, decoded);
}

TEST(ProbeBinaryIo, BinaryIsSmallerThanText) {
  const probes::ProbeSet set = probes::run_probe_suite(
      machine::find(machine::base_system_name()));
  EXPECT_LT(probes::to_binary(set).size(), probes::to_text(set).size());
}

TEST(ProbeBinaryIo, TruncatedBinaryThrows) {
  const std::string encoded =
      probes::to_binary(synthetic_probe_set(/*salt=*/7));
  // Every truncation point must throw, not crash or mis-decode — the
  // frame length/checksum check fires before any payload field is used.
  for (std::size_t keep : {std::size_t{0}, std::size_t{3}, std::size_t{12},
                           std::size_t{27}, encoded.size() / 2,
                           encoded.size() - 1}) {
    const std::string truncated = encoded.substr(0, keep);
    EXPECT_THROW((void)probes::probe_set_from_artifact(truncated),
                 precondition_error)
        << "kept " << keep << " bytes";
  }
}

TEST(ProbeBinaryIo, BitFlippedBinaryThrows) {
  const std::string encoded =
      probes::to_binary(synthetic_probe_set(/*salt=*/8));
  // Flip one bit at a spread of offsets across header and payload.
  for (std::size_t offset = 0; offset < encoded.size();
       offset += encoded.size() / 13 + 1) {
    std::string corrupted = encoded;
    corrupted[offset] = static_cast<char>(corrupted[offset] ^ 0x10);
    EXPECT_THROW((void)probes::probe_set_from_artifact(corrupted),
                 precondition_error)
        << "flipped bit at offset " << offset;
  }
}

// ---------------------------------------------------------------------
// Index: schema, self-healing, crash-safety.
// ---------------------------------------------------------------------

TEST(ArtifactCacheIndex, StoreMaintainsPersistentIndex) {
  const fs::path dir = scratch_cache("index-basic");
  const ArtifactCache cache(dir.string());
  cache.store("a.txt", "alpha");
  cache.store("b.txt", "beta-beta");

  EXPECT_TRUE(fs::exists(dir / "index.msim"));
  const auto entries = cache.index_entries();
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].name, "a.txt");
  EXPECT_EQ(entries[0].bytes, 5u);
  EXPECT_EQ(entries[1].name, "b.txt");
  EXPECT_EQ(entries[1].bytes, 9u);
  EXPECT_TRUE(cache.index_consistent());

  // A second instance reading the same directory sees the same index.
  const ArtifactCache reader(dir.string());
  EXPECT_EQ(reader.index_entries().size(), 2u);
  fs::remove_all(dir);
}

TEST(ArtifactCacheIndex, MissingIndexIsRebuiltFromDirectoryScan) {
  const fs::path dir = scratch_cache("index-missing");
  {
    const ArtifactCache writer(dir.string());
    writer.store("a.txt", "alpha");
    writer.store("b.txt", "beta");
  }
  fs::remove(dir / "index.msim");

  const std::uint64_t rebuilds_before = counter_value("cache.index.rebuild");
  const ArtifactCache cache(dir.string());
  // Loads keep working (the data was never damaged)...
  const auto loaded = cache.load("a.txt");
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(*loaded, "alpha");
  // ...and the index healed itself from the scan.
  EXPECT_GT(counter_value("cache.index.rebuild"), rebuilds_before);
  EXPECT_TRUE(fs::exists(dir / "index.msim"));
  EXPECT_EQ(cache.index_entries().size(), 2u);
  EXPECT_TRUE(cache.index_consistent());
  fs::remove_all(dir);
}

TEST(ArtifactCacheIndex, GarbledIndexIsRebuiltFromDirectoryScan) {
  const fs::path dir = scratch_cache("index-garbled");
  {
    const ArtifactCache writer(dir.string());
    writer.store("a.txt", "alpha");
  }
  const std::vector<std::string> junk_cases = {
      "complete garbage\nno equals signs\n",
      "entries = banana\n",
      "entries = 5\n",  // claims rows it does not have
      "entries = 1\nentry.0.name = a.txt\n",  // missing fields
      std::string("\x00\xff\x7f binary noise", 16)};
  for (const std::string& junk : junk_cases) {
    write_file(dir / "index.msim", junk);
    const std::uint64_t rebuilds_before =
        counter_value("cache.index.rebuild");
    const ArtifactCache cache(dir.string());
    const auto loaded = cache.load("a.txt");
    ASSERT_TRUE(loaded.has_value()) << "junk: " << junk;
    EXPECT_EQ(*loaded, "alpha");
    EXPECT_GT(counter_value("cache.index.rebuild"), rebuilds_before);
    EXPECT_TRUE(cache.index_consistent());
  }
  fs::remove_all(dir);
}

TEST(ArtifactCacheIndex, StaleIndexRowForMissingFileIsDropped) {
  const fs::path dir = scratch_cache("index-stale");
  const ArtifactCache cache(dir.string());
  cache.store("a.txt", "alpha");
  cache.store("gone.txt", "soon deleted");
  fs::remove(dir / "gone.txt");

  // The stale row must read as a plain miss, never a crash.
  const std::uint64_t absent_before = counter_value("cache.miss.absent");
  EXPECT_FALSE(cache.load("gone.txt").has_value());
  EXPECT_GT(counter_value("cache.miss.absent"), absent_before);

  // Stats skip the stale row; a rebuild drops it from the index.
  EXPECT_EQ(cache.stats().entries, 1u);
  EXPECT_EQ(cache.rebuild_index(), 1u);
  EXPECT_TRUE(cache.index_consistent());
  fs::remove_all(dir);
}

TEST(ArtifactCacheIndex, LeftoverIndexTempFromCrashIsIgnored) {
  const fs::path dir = scratch_cache("index-crash-temp");
  const ArtifactCache cache(dir.string());
  cache.store("a.txt", "alpha");
  // Simulate a crash mid-publish: a torn staging file next to the real
  // index. It must be ignored by scans and never parsed as the index.
  write_file(dir / "index.msim.tmp.99.12345", "entries = torn garba");
  const ArtifactCache reader(dir.string());
  EXPECT_EQ(reader.index_entries().size(), 1u);
  EXPECT_EQ(reader.stats().entries, 1u);
  ASSERT_TRUE(reader.load("a.txt").has_value());
  fs::remove_all(dir);
}

// ---------------------------------------------------------------------
// Payload fault injection through the cache: truncation and corruption
// degrade to misses, heal, and never surface wrong data.
// ---------------------------------------------------------------------

TEST(ArtifactCacheFaults, TruncatedEntryIsCorruptMissAndDeleted) {
  const fs::path dir = scratch_cache("fault-truncate");
  const ArtifactCache cache(dir.string());
  const std::string content = probes::to_binary(synthetic_probe_set(11));
  cache.store("probe-x.bin", content);

  write_file(dir / "probe-x.bin", content.substr(0, content.size() / 2));
  const std::uint64_t corrupt_before = counter_value("cache.miss.corrupt");
  EXPECT_FALSE(cache.load("probe-x.bin").has_value());
  EXPECT_GT(counter_value("cache.miss.corrupt"), corrupt_before);
  // The damaged entry was deleted: the next load is a clean absent miss,
  // and a re-store round-trips again.
  EXPECT_FALSE(fs::exists(dir / "probe-x.bin"));
  cache.store("probe-x.bin", content);
  EXPECT_EQ(cache.load("probe-x.bin"), content);
  fs::remove_all(dir);
}

TEST(ArtifactCacheFaults, BitFlippedEntryIsCorruptMissAndDeleted) {
  const fs::path dir = scratch_cache("fault-bitflip");
  const ArtifactCache cache(dir.string());
  cache.store("gt-y.txt", "obs.0.seconds = 123.456\n");

  std::string flipped = read_file(dir / "gt-y.txt");
  flipped[5] = static_cast<char>(flipped[5] ^ 0x01);
  write_file(dir / "gt-y.txt", flipped);

  const std::uint64_t corrupt_before = counter_value("cache.miss.corrupt");
  EXPECT_FALSE(cache.load("gt-y.txt").has_value());
  EXPECT_GT(counter_value("cache.miss.corrupt"), corrupt_before);
  EXPECT_FALSE(fs::exists(dir / "gt-y.txt"));
  fs::remove_all(dir);
}

TEST(ArtifactCacheFaults, CorruptionDetectedByFreshInstanceViaDiskIndex) {
  const fs::path dir = scratch_cache("fault-fresh-instance");
  {
    const ArtifactCache writer(dir.string());
    writer.store("entry.txt", "the original payload");
  }
  write_file(dir / "entry.txt", "the corrupted payload");  // same length
  // A fresh instance has no in-memory state: detection must come from
  // the checksum persisted in the on-disk index.
  const ArtifactCache cache(dir.string());
  const std::uint64_t corrupt_before = counter_value("cache.miss.corrupt");
  EXPECT_FALSE(cache.load("entry.txt").has_value());
  EXPECT_GT(counter_value("cache.miss.corrupt"), corrupt_before);
  fs::remove_all(dir);
}

// ---------------------------------------------------------------------
// LRU eviction under a size cap.
// ---------------------------------------------------------------------

TEST(ArtifactCacheLru, EvictsLeastRecentlyUsedAtStoreTime) {
  const fs::path dir = scratch_cache("lru-basic");
  // Cap fits two 40-byte entries plus slack, not three.
  const ArtifactCache cache(dir.string(), /*max_bytes=*/100);
  const std::string payload(40, 'x');

  const std::uint64_t evicted_before = counter_value("cache.evict.count");
  cache.store("a.txt", payload);
  cache.store("b.txt", payload);
  // Touch `a` so `b` becomes the least recently used.
  ASSERT_TRUE(cache.load("a.txt").has_value());
  cache.store("c.txt", payload);

  EXPECT_TRUE(cache.load("a.txt").has_value());   // recently used: kept
  EXPECT_TRUE(cache.load("c.txt").has_value());   // just stored: kept
  EXPECT_FALSE(cache.load("b.txt").has_value());  // LRU: evicted
  EXPECT_GT(counter_value("cache.evict.count"), evicted_before);
  EXPECT_GE(cache.stats().evictions, 1u);
  EXPECT_LE(cache.stats().bytes, 100u);
  EXPECT_TRUE(cache.index_consistent());
  fs::remove_all(dir);
}

TEST(ArtifactCacheLru, NewestEntryIsNeverEvictedByItsOwnStore) {
  const fs::path dir = scratch_cache("lru-oversize");
  const ArtifactCache cache(dir.string(), /*max_bytes=*/10);
  cache.store("big.txt", std::string(1000, 'y'));
  // Over the cap but just stored: kept (a cache that evicted its own
  // store would never make progress).
  EXPECT_TRUE(cache.load("big.txt").has_value());
  // The next store displaces it.
  cache.store("next.txt", std::string(8, 'z'));
  EXPECT_FALSE(cache.load("big.txt").has_value());
  EXPECT_TRUE(cache.load("next.txt").has_value());
  fs::remove_all(dir);
}

TEST(ArtifactCacheLru, UncappedCacheNeverEvicts) {
  const fs::path dir = scratch_cache("lru-uncapped");
  const ArtifactCache cache(dir.string());
  for (int i = 0; i < 32; ++i) {
    cache.store("entry-" + std::to_string(i) + ".txt",
                std::string(1024, 'a'));
  }
  EXPECT_EQ(cache.stats().entries, 32u);
  EXPECT_EQ(cache.stats().evictions, 0u);
  fs::remove_all(dir);
}

TEST(ArtifactCacheLru, MaxBytesEnvParsesSuffixes) {
  ::setenv("MSIM_CACHE_MAX_BYTES", "1234", 1);
  EXPECT_EQ(ArtifactCache::default_max_bytes(), 1234u);
  ::setenv("MSIM_CACHE_MAX_BYTES", "64k", 1);
  EXPECT_EQ(ArtifactCache::default_max_bytes(), 64u * 1024);
  ::setenv("MSIM_CACHE_MAX_BYTES", "2M", 1);
  EXPECT_EQ(ArtifactCache::default_max_bytes(), 2u * 1024 * 1024);
  ::setenv("MSIM_CACHE_MAX_BYTES", "1g", 1);
  EXPECT_EQ(ArtifactCache::default_max_bytes(), 1ull << 30);
  // Malformed values mean "no cap", never a crash or a surprise cap.
  for (const char* bad : {"", "banana", "12q", "-5", "1kk"}) {
    ::setenv("MSIM_CACHE_MAX_BYTES", bad, 1);
    EXPECT_EQ(ArtifactCache::default_max_bytes(), 0u) << bad;
  }
  ::unsetenv("MSIM_CACHE_MAX_BYTES");
  EXPECT_EQ(ArtifactCache::default_max_bytes(), 0u);
}

TEST(ArtifactCacheLru, MaxBytesEnvOverflowSaturates) {
  constexpr std::uint64_t kMax = std::numeric_limits<std::uint64_t>::max();
  // A huge requested cap must never wrap into a tiny one: both digit
  // overflow (ERANGE) and suffix-multiplication overflow saturate to
  // UINT64_MAX (effectively unlimited), deterministically.
  ::setenv("MSIM_CACHE_MAX_BYTES", "99999999999g", 1);
  EXPECT_EQ(ArtifactCache::default_max_bytes(), kMax);
  ::setenv("MSIM_CACHE_MAX_BYTES", "18446744073709551616", 1);  // 2^64
  EXPECT_EQ(ArtifactCache::default_max_bytes(), kMax);
  ::setenv("MSIM_CACHE_MAX_BYTES", "99999999999999999999999999", 1);
  EXPECT_EQ(ArtifactCache::default_max_bytes(), kMax);
  // The largest g-value whose product still fits must NOT saturate...
  ::setenv("MSIM_CACHE_MAX_BYTES", "17179869183g", 1);
  EXPECT_EQ(ArtifactCache::default_max_bytes(), 17179869183ull << 30);
  // ...and one more does.
  ::setenv("MSIM_CACHE_MAX_BYTES", "17179869184g", 1);
  EXPECT_EQ(ArtifactCache::default_max_bytes(), kMax);
  ::unsetenv("MSIM_CACHE_MAX_BYTES");
}

TEST(ArtifactCacheLru, MaxBytesEnvRejectsMalformedEdgeCases) {
  // Trailing whitespace, bare suffix, unknown suffix, negative: all mean
  // "no cap" (0), never a partial parse.
  for (const char* bad : {"8 ", " ", "-1", "-1g", "1t", "g", "k8", "0x10"}) {
    ::setenv("MSIM_CACHE_MAX_BYTES", bad, 1);
    EXPECT_EQ(ArtifactCache::default_max_bytes(), 0u) << "'" << bad << "'";
  }
  // Plain and suffixed happy paths still parse next to the rejects.
  ::setenv("MSIM_CACHE_MAX_BYTES", "8", 1);
  EXPECT_EQ(ArtifactCache::default_max_bytes(), 8u);
  ::setenv("MSIM_CACHE_MAX_BYTES", "8K", 1);
  EXPECT_EQ(ArtifactCache::default_max_bytes(), 8u * 1024);
  ::unsetenv("MSIM_CACHE_MAX_BYTES");
}

// ---------------------------------------------------------------------
// Probe stage migration: v1 text artifacts written by the old code are
// loaded, counted as hits, and upgraded to binary.
// ---------------------------------------------------------------------

TEST(ArtifactCacheMigration, LegacyTextProbeArtifactHitsAndUpgrades) {
  const fs::path dir = scratch_cache("probe-migration");
  const auto machine = machine::find("ARL_Xeon");
  const probes::ProbeSet expected = probes::run_probe_suite(machine);

  // Stage a v1 artifact exactly as the old code would have written it.
  {
    const ArtifactCache seed(dir.string());
    seed.store(legacy_probe_artifact_name(machine),
               probes::to_text(expected));
  }

  const ArtifactCache cache(dir.string());
  StageStats stats;
  const auto sets = run_probe_stage({machine}, 1, cache, &stats);
  EXPECT_EQ(stats.cache_hits, 1u) << "v1 text artifact should hit";
  expect_probe_sets_bitwise_equal(sets.at(machine.name), expected);

  // The hit re-stored the artifact in the binary encoding; a second run
  // hits the binary name directly.
  const std::string upgraded =
      read_file(dir / probe_artifact_name(machine));
  ASSERT_FALSE(upgraded.empty());
  expect_probe_sets_bitwise_equal(
      probes::probe_set_from_artifact(upgraded), expected);
  StageStats again;
  const auto rerun = run_probe_stage({machine}, 1, cache, &again);
  EXPECT_EQ(again.cache_hits, 1u);
  expect_probe_sets_bitwise_equal(rerun.at(machine.name), expected);
  fs::remove_all(dir);
}

}  // namespace
}  // namespace msim::pipeline
