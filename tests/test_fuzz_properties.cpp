// Fuzz-style property tests: random valid machines and workloads must
// never break the pipeline's invariants. Each case derives deterministic
// structure from a seeded generator, so failures are reproducible by seed.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "common/units.hpp"
#include "convolve/convolver.hpp"
#include "machine/proposed.hpp"
#include "machine/config_io.hpp"
#include "memsim/bandwidth_model.hpp"
#include "probes/synthetic.hpp"
#include "simulate/executor.hpp"
#include "trace/tracer.hpp"
#include "workload/app_io.hpp"

namespace msim {
namespace {

/// A random but *valid* machine config: parameters drawn within physical
/// ranges, cache hierarchy constructed to respect the validation rules.
machine::MachineConfig random_machine(std::uint64_t seed) {
  Rng rng(seed);
  machine::MachineConfig c;
  c.name = "FUZZ_" + std::to_string(seed);
  c.architecture = "FUZZ";
  c.total_processors = 16 << rng.uniform_u64(6);

  c.cpu.clock_ghz = rng.uniform(0.3, 4.0);
  c.cpu.flops_per_cycle = 1 << rng.uniform_u64(3);
  c.cpu.hpl_efficiency = rng.uniform(0.3, 0.95);
  c.cpu.dependency_derate = rng.uniform(0.2, 1.0);
  c.cpu.branch_derate = rng.uniform(0.4, 1.0);
  c.cpu.latency_hiding = rng.uniform(0.0, 1.0);

  const int levels = 1 + static_cast<int>(rng.uniform_u64(3));
  std::uint64_t size = std::uint64_t{8} << (10 + rng.uniform_u64(3));
  double bandwidth = rng.uniform(4.0, 40.0) * GB;
  for (int i = 0; i < levels; ++i) {
    machine::CacheLevel level;
    level.name = "L" + std::to_string(i + 1);
    level.size_bytes = size;
    level.line_bytes = 32u << rng.uniform_u64(3);
    level.associativity = 1u << rng.uniform_u64(5);
    level.unit_stride_bw = bandwidth;
    level.random_bw = bandwidth * rng.uniform(0.2, 1.0);
    level.latency_s = rng.uniform(1.0, 50.0) * 1e-9;
    c.caches.push_back(level);
    size <<= 2 + rng.uniform_u64(3);
    bandwidth *= rng.uniform(0.3, 1.0);
  }
  c.memory.unit_stride_bw =
      std::min(bandwidth, c.caches.back().unit_stride_bw) *
      rng.uniform(0.3, 1.0);
  c.memory.random_bw = c.memory.unit_stride_bw * rng.uniform(0.05, 0.5);
  c.memory.latency_s = rng.uniform(80.0, 400.0) * 1e-9;

  c.tlb.entries = 32u << rng.uniform_u64(6);
  c.tlb.page_bytes = 4096u << rng.uniform_u64(3);
  c.tlb.miss_penalty_s = rng.uniform(20.0, 300.0) * 1e-9;

  c.net.latency_s = rng.uniform(1.0, 30.0) * 1e-6;
  c.net.bandwidth = rng.uniform(0.1, 2.0) * GB;
  c.net.eager_threshold_bytes = 1024u << rng.uniform_u64(7);
  c.net.per_message_overhead_s = rng.uniform(0.2, 5.0) * 1e-6;
  c.net.procs_per_node = 1 << rng.uniform_u64(6);

  c.system_efficiency = rng.uniform(0.7, 1.0);
  c.memory_contention = rng.uniform(0.0, 0.6);
  return c;
}

/// A random valid single-phase workload.
workload::AppModel random_app(std::uint64_t seed) {
  Rng rng(seed);
  workload::AppModel app;
  app.name = "FuzzApp_" + std::to_string(seed);
  app.nprocs = 8 << rng.uniform_u64(6);
  app.timesteps = 1 + static_cast<int>(rng.uniform_u64(200));

  workload::Phase phase;
  phase.name = "phase";
  phase.load_imbalance = rng.uniform(1.0, 1.5);
  const int blocks = 1 + static_cast<int>(rng.uniform_u64(4));
  for (int b = 0; b < blocks; ++b) {
    workload::BasicBlock block;
    block.name = app.name + "/b" + std::to_string(b);
    block.flops_per_iteration = rng.uniform_u64(200);
    block.refs_per_iteration = 1 + rng.uniform_u64(40);
    block.element_bytes = 4u << rng.uniform_u64(2);
    block.iterations = 1000 + rng.uniform_u64(1u << 22);
    double unit = rng.uniform(0.0, 1.0);
    double short_f = rng.uniform(0.0, 1.0 - unit);
    block.mix.unit = unit;
    block.mix.short_ = short_f;
    block.mix.random = 1.0 - unit - short_f;
    block.mix.short_stride_elements =
        2 + static_cast<int>(rng.uniform_u64(7));
    block.working_set_bytes =
        std::max<std::uint64_t>(block.element_bytes,
                                std::uint64_t{1} << (12 +
                                                     rng.uniform_u64(16)));
    block.dependency = rng.bernoulli(0.3)
                           ? memsim::DependencyClass::Serial
                           : memsim::DependencyClass::Independent;
    block.branch_density = rng.uniform(0.0, 0.5);
    block.ilp_efficiency = rng.uniform(0.05, 0.9);
    block.page_locality = rng.uniform(0.0, 0.9);
    phase.blocks.push_back(std::move(block));
  }
  const int events = static_cast<int>(rng.uniform_u64(4));
  for (int e = 0; e < events; ++e) {
    netsim::CommEvent event;
    const auto types = {netsim::CommType::PointToPoint,
                        netsim::CommType::AllReduce,
                        netsim::CommType::Broadcast,
                        netsim::CommType::AllToAll,
                        netsim::CommType::Barrier};
    event.type = *(types.begin() + rng.uniform_u64(types.size()));
    event.bytes = rng.uniform_u64(1u << 20);
    event.count = 1 + rng.uniform_u64(100);
    phase.comm.push_back(event);
  }
  app.phases.push_back(std::move(phase));
  workload::validate(app);
  return app;
}

class MachineFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MachineFuzz, RandomMachinesSurviveTheWholePipeline) {
  const auto machine = random_machine(GetParam());
  ASSERT_NO_THROW(machine::validate(machine));

  // Config IO round-trips.
  const auto parsed = machine::from_text(machine::to_text(machine));
  EXPECT_EQ(machine::to_text(parsed), machine::to_text(machine));

  // Bandwidth surface invariants.
  for (std::uint64_t ws = 4 * KiB; ws <= 256 * MiB; ws *= 8) {
    const double unit = memsim::sustained_bandwidth(
        machine, ws,
        {.stride = memsim::StrideClass::Unit,
         .dependency = memsim::DependencyClass::Independent,
         .branch_density = 0.0});
    const double random = memsim::sustained_bandwidth(
        machine, ws,
        {.stride = memsim::StrideClass::Random,
         .dependency = memsim::DependencyClass::Independent,
         .branch_density = 0.0});
    EXPECT_GT(unit, 0.0);
    EXPECT_LE(random, unit * (1 + 1e-9));
  }

  // Probes run and are ordered sensibly.
  const auto probes_set = probes::run_probe_suite(machine);
  EXPECT_GT(probes_set.hpl_rmax, 0.0);
  EXPECT_GT(probes_set.stream_bw, 0.0);
  EXPECT_LE(probes_set.gups_bw, probes_set.stream_bw * (1 + 1e-9));
}

INSTANTIATE_TEST_SUITE_P(Seeds, MachineFuzz,
                         ::testing::Range<std::uint64_t>(1000, 1012));

class WorkloadFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(WorkloadFuzz, RandomAppsSurviveTheWholePipeline) {
  const auto app = random_app(GetParam());
  const auto machine = random_machine(GetParam() * 7 + 1);

  // Ground truth is positive and deterministic.
  const auto run_a = simulate::execute(app, machine);
  const auto run_b = simulate::execute(app, machine);
  EXPECT_GT(run_a.wall_seconds, 0.0);
  EXPECT_DOUBLE_EQ(run_a.wall_seconds, run_b.wall_seconds);

  // App IO round-trips to the identical simulated time.
  const auto parsed = workload::app_from_text(workload::to_text(app));
  EXPECT_DOUBLE_EQ(simulate::execute(parsed, machine).wall_seconds,
                   run_a.wall_seconds);

  // Tracing produces a consistent signature.
  trace::TracerOptions tracer;
  tracer.sample_refs = 1 << 14;  // keep fuzz cases fast
  const auto signature = trace::trace_application(app, "fuzz-base", tracer);
  EXPECT_EQ(signature.total_flops_per_timestep(),
            app.total_flops_per_timestep());
  for (const trace::BlockView block : signature.blocks) {
    EXPECT_NEAR(block.unit_fraction() + block.short_fraction() +
                    block.random_fraction(),
                1.0, 1e-9);
    EXPECT_GT(block.working_set_estimate(), 0u);
  }

  // Convolution against random-machine probes stays positive and finite.
  const auto probes_set = probes::run_probe_suite(machine);
  for (auto metric : {convolve::PredictiveMetric::M4_Hpl,
                      convolve::PredictiveMetric::M6_HplStreamGups,
                      convolve::PredictiveMetric::M9_HplMapsNetDep}) {
    const double convolved =
        convolve::convolved_time(signature, probes_set, metric);
    EXPECT_TRUE(std::isfinite(convolved));
    EXPECT_GE(convolved, 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WorkloadFuzz,
                         ::testing::Range<std::uint64_t>(2000, 2012));

TEST(ProposedSystems, ValidateAndProbe) {
  for (const auto& machine : machine::proposed_systems()) {
    EXPECT_NO_THROW(machine::validate(machine));
    const auto probes_set = probes::run_probe_suite(machine);
    EXPECT_GT(probes_set.hpl_rmax, 0.0);
  }
  // The XT3's un-contended controller makes it the STREAM leader.
  EXPECT_GT(probes::run_probe_suite(machine::make_cray_xt3()).stream_bw,
            4.0 * GB);
}

}  // namespace
}  // namespace msim
