// Application models: validation, the TI-05 suite, scaling behaviour.
#include <gtest/gtest.h>

#include "common/check.hpp"
#include "test_support.hpp"
#include "workload/apps.hpp"

namespace msim::workload {
namespace {

TEST(MemoryMix, ValidationRules) {
  EXPECT_NO_THROW(validate(MemoryMix{.unit = 0.5, .short_ = 0.3,
                                     .random = 0.2,
                                     .short_stride_elements = 4}));
  EXPECT_THROW(validate(MemoryMix{.unit = 0.5, .short_ = 0.3,
                                  .random = 0.3,
                                  .short_stride_elements = 4}),
               precondition_error);  // does not sum to 1
  EXPECT_THROW(validate(MemoryMix{.unit = 1.0, .short_ = 0.0, .random = 0.0,
                                  .short_stride_elements = 9}),
               precondition_error);  // stride above paper's threshold
}

BasicBlock minimal_block() {
  return BasicBlock{.name = "b",
                    .flops_per_iteration = 1,
                    .refs_per_iteration = 2,
                    .element_bytes = 8,
                    .iterations = 10,
                    .mix = {.unit = 1.0, .short_ = 0.0, .random = 0.0,
                            .short_stride_elements = 2},
                    .working_set_bytes = 1024,
                    .ilp_efficiency = 0.5};
}

TEST(BasicBlock, TrafficAndFlopTotals) {
  const BasicBlock block = minimal_block();
  EXPECT_EQ(block.bytes_per_timestep(), 2u * 10 * 8);
  EXPECT_EQ(block.flops_per_timestep(), 10u);
}

TEST(BasicBlock, StreamSpecMatchesMix) {
  BasicBlock block = minimal_block();
  block.mix = {.unit = 0.5, .short_ = 0.3, .random = 0.2,
               .short_stride_elements = 4};
  const auto spec = block.stream_spec();
  ASSERT_EQ(spec.components.size(), 3u);
  EXPECT_EQ(spec.components[0].stride_bytes, 8);
  EXPECT_EQ(spec.components[1].stride_bytes, 32);
  EXPECT_EQ(spec.components[2].stride_bytes, 0);
  EXPECT_DOUBLE_EQ(spec.components[0].weight, 0.5);
  EXPECT_EQ(spec.working_set_bytes, block.working_set_bytes);
}

TEST(BasicBlock, StreamSpecOmitsZeroComponents) {
  const auto spec = minimal_block().stream_spec();
  EXPECT_EQ(spec.components.size(), 1u);
}

TEST(BasicBlock, DistinctBlocksGetDistinctAddressRegions) {
  BasicBlock a = minimal_block();
  BasicBlock b = minimal_block();
  b.name = "different";
  EXPECT_NE(a.stream_spec().base_address, b.stream_spec().base_address);
}

TEST(BasicBlock, ValidationRejectsNonsense) {
  BasicBlock block = minimal_block();
  block.iterations = 0;
  EXPECT_THROW(validate(block), precondition_error);

  block = minimal_block();
  block.working_set_bytes = 1;
  EXPECT_THROW(validate(block), precondition_error);

  block = minimal_block();
  block.branch_density = 1.5;
  EXPECT_THROW(validate(block), precondition_error);

  block = minimal_block();
  block.page_locality = 1.0;
  EXPECT_THROW(validate(block), precondition_error);
}

TEST(Suite, HasFiveTestCasesWithPaperCounts) {
  const auto suite = ti05_suite();
  ASSERT_EQ(suite.size(), 5u);
  EXPECT_EQ(suite[0].name, "AVUS_Standard");
  EXPECT_EQ(suite[0].cpu_counts, (std::vector<int>{32, 64, 128}));
  EXPECT_EQ(suite[1].cpu_counts, (std::vector<int>{128, 256, 384}));
  EXPECT_EQ(suite[2].cpu_counts, (std::vector<int>{59, 96, 124}));
  EXPECT_EQ(suite[3].cpu_counts, (std::vector<int>{32, 48, 64}));
  EXPECT_EQ(suite[4].cpu_counts, (std::vector<int>{16, 32, 64}));
}

TEST(Suite, LookupByName) {
  EXPECT_EQ(find_test_case("HYCOM_Standard").name, "HYCOM_Standard");
  EXPECT_THROW((void)find_test_case("SPECfp"), precondition_error);
}

/// Every (app, count) instance validates and has sane structure.
class AppInstanceProperty
    : public ::testing::TestWithParam<msim::testing::AppInstance> {};

TEST_P(AppInstanceProperty, BuildsAndValidates) {
  const auto& instance = GetParam();
  const AppModel app = find_test_case(instance.app).build(instance.nprocs);
  EXPECT_NO_THROW(validate(app));
  EXPECT_EQ(app.nprocs, instance.nprocs);
  EXPECT_GT(app.timesteps, 0);
  EXPECT_GT(app.total_flops_per_timestep(), 0u);
  EXPECT_GT(app.total_bytes_per_timestep(), 0u);
  for (const auto& phase : app.phases) {
    EXPECT_GE(phase.load_imbalance, 1.0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Ti05, AppInstanceProperty,
    ::testing::ValuesIn(msim::testing::all_app_instances()),
    [](const auto& info) {
      return info.param.app + "_" + std::to_string(info.param.nprocs);
    });

TEST(Scaling, PerProcessWorkShrinksWithProcessorCount) {
  for (const auto& test_case : ti05_suite()) {
    const auto small = test_case.build(test_case.cpu_counts.front());
    const auto large = test_case.build(test_case.cpu_counts.back());
    EXPECT_LT(large.total_bytes_per_timestep(),
              small.total_bytes_per_timestep())
        << test_case.name;
    EXPECT_LT(large.total_flops_per_timestep(),
              small.total_flops_per_timestep())
        << test_case.name;
  }
}

TEST(Scaling, TotalWorkIsRoughlyConserved) {
  // Strong scaling: nprocs * per-process work stays within 10%.
  for (const auto& test_case : ti05_suite()) {
    const int p0 = test_case.cpu_counts.front();
    const int p1 = test_case.cpu_counts.back();
    const double total0 =
        static_cast<double>(test_case.build(p0).total_flops_per_timestep()) *
        p0;
    const double total1 =
        static_cast<double>(test_case.build(p1).total_flops_per_timestep()) *
        p1;
    EXPECT_NEAR(total1 / total0, 1.0, 0.1) << test_case.name;
  }
}

TEST(Scaling, HaloBytesShrinkSublinearly) {
  // Surface-to-volume: per-process halo bytes shrink with P, but slower
  // than compute (so communication fraction grows).
  const auto small = make_avus_standard(32);
  const auto large = make_avus_standard(128);
  const auto halo_bytes = [](const AppModel& app) {
    double bytes = 0.0;
    for (const auto& phase : app.phases) {
      for (const auto& event : phase.comm) {
        if (event.type == netsim::CommType::PointToPoint) {
          bytes += static_cast<double>(event.bytes) * event.count;
        }
      }
    }
    return bytes;
  };
  const double ratio = halo_bytes(large) / halo_bytes(small);
  EXPECT_LT(ratio, 1.0);          // shrinks per process
  EXPECT_GT(ratio, 1.0 / 4.0);    // but slower than compute (1/4)
}

TEST(Apps, OverflowAdiIsSerialAndCacheResident) {
  // The block the paper's Metric #9 story hinges on.
  const auto app = make_overflow2_standard(32);
  const BasicBlock* adi = nullptr;
  for (const auto& phase : app.phases) {
    for (const auto& block : phase.blocks) {
      if (block.name.find("adi_sweep") != std::string::npos) adi = &block;
    }
  }
  ASSERT_NE(adi, nullptr);
  EXPECT_EQ(adi->dependency, memsim::DependencyClass::Serial);
  EXPECT_LT(adi->working_set_bytes, 4u << 20);  // plane fits in big caches
}

TEST(Apps, AvusLargeIsBiggerThanStandard) {
  const auto standard = make_avus_standard(128);
  const auto large = make_avus_large(128);
  EXPECT_GT(large.total_bytes_per_timestep(),
            standard.total_bytes_per_timestep());
  EXPECT_GT(large.timesteps, standard.timesteps);
}

}  // namespace
}  // namespace msim::workload
