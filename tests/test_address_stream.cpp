// Address-stream generation: determinism, range containment, stride walks,
// wrapping, component weighting, and PC tagging.
#include <gtest/gtest.h>

#include <map>

#include "common/check.hpp"
#include "memsim/address_stream.hpp"

namespace msim::memsim {
namespace {

StreamSpec unit_spec(std::uint64_t ws = 1024, std::uint32_t element = 8) {
  StreamSpec spec;
  spec.base_address = 0x10000;
  spec.working_set_bytes = ws;
  spec.element_bytes = element;
  spec.components = {{.stride_bytes = element, .weight = 1.0}};
  return spec;
}

TEST(AddressGenerator, DeterministicPerSeed) {
  StreamSpec spec = unit_spec(4096);
  spec.components.push_back({.stride_bytes = 0, .weight = 1.0});
  AddressGenerator a(spec, 5), b(spec, 5), c(spec, 6);
  bool any_differs = false;
  for (int i = 0; i < 500; ++i) {
    const auto ref_a = a.next();
    EXPECT_EQ(ref_a, b.next());
    if (ref_a != c.next()) any_differs = true;
  }
  EXPECT_TRUE(any_differs);
}

TEST(AddressGenerator, AddressesStayInWorkingSet) {
  StreamSpec spec = unit_spec(2048);
  spec.components.push_back({.stride_bytes = 0, .weight = 2.0});
  spec.components.push_back({.stride_bytes = 32, .weight = 1.0});
  AddressGenerator generator(spec, 9);
  for (int i = 0; i < 5000; ++i) {
    const std::uint64_t address = generator.next();
    EXPECT_GE(address, spec.base_address);
    EXPECT_LT(address, spec.base_address + spec.working_set_bytes);
  }
}

TEST(AddressGenerator, UnitStrideWalksSequentially) {
  AddressGenerator generator(unit_spec(64), 1);
  // next() returns the current cursor, then advances (wrapping at the
  // working-set boundary).
  for (int sweep = 0; sweep < 3; ++sweep) {
    for (std::uint64_t offset = 0; offset < 64; offset += 8) {
      EXPECT_EQ(generator.next(), 0x10000 + offset);
    }
  }
}

TEST(AddressGenerator, BackwardStrideWraps) {
  StreamSpec spec = unit_spec(64);
  spec.components[0].stride_bytes = -8;
  AddressGenerator generator(spec, 1);
  EXPECT_EQ(generator.next(), 0x10000 + 0);   // starts at the cursor
  EXPECT_EQ(generator.next(), 0x10000 + 56);  // 0 - 8 wraps to the end
  EXPECT_EQ(generator.next(), 0x10000 + 48);
}

TEST(AddressGenerator, RandomAddressesAreElementAligned) {
  StreamSpec spec = unit_spec(4096, 16);
  spec.components = {{.stride_bytes = 0, .weight = 1.0}};
  AddressGenerator generator(spec, 3);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ((generator.next() - spec.base_address) % 16, 0u);
  }
}

TEST(AddressGenerator, ComponentWeightsAreRespected) {
  StreamSpec spec = unit_spec(1u << 20);
  spec.components = {{.stride_bytes = 8, .weight = 3.0},
                     {.stride_bytes = 0, .weight = 1.0}};
  AddressGenerator generator(spec, 17);
  std::map<std::uint32_t, int> counts;
  const int draws = 40000;
  for (int i = 0; i < draws; ++i) {
    ++counts[generator.next_tagged().stream_id];
  }
  EXPECT_NEAR(counts[0] / static_cast<double>(draws), 0.75, 0.02);
  EXPECT_NEAR(counts[1] / static_cast<double>(draws), 0.25, 0.02);
}

TEST(AddressGenerator, TagsIdentifyComponents) {
  StreamSpec spec = unit_spec(1u << 16);
  spec.components = {{.stride_bytes = 8, .weight = 1.0},
                     {.stride_bytes = 0, .weight = 1.0}};
  AddressGenerator generator(spec, 21);
  std::uint64_t last_strided = 0;
  bool has_last = false;
  for (int i = 0; i < 2000; ++i) {
    const auto ref = generator.next_tagged();
    ASSERT_LT(ref.stream_id, 2u);
    if (ref.stream_id == 0) {
      if (has_last && ref.address > last_strided) {
        EXPECT_EQ(ref.address - last_strided, 8u);  // strided stream
      }
      last_strided = ref.address;
      has_last = true;
    }
  }
}

TEST(AddressGenerator, GenerateBatch) {
  AddressGenerator generator(unit_spec(), 1);
  const auto batch = generator.generate(100);
  EXPECT_EQ(batch.size(), 100u);
}

TEST(AddressGenerator, RejectsBadSpecs) {
  StreamSpec empty = unit_spec();
  empty.components.clear();
  EXPECT_THROW(AddressGenerator(empty, 1), precondition_error);

  StreamSpec tiny = unit_spec();
  tiny.working_set_bytes = 4;  // < element size
  EXPECT_THROW(AddressGenerator(tiny, 1), precondition_error);

  StreamSpec negative = unit_spec();
  negative.components[0].weight = -1.0;
  EXPECT_THROW(AddressGenerator(negative, 1), precondition_error);
}

}  // namespace
}  // namespace msim::memsim
