// msim-lint engine tests: one fixture per rule family (each carrying a
// single known violation), tokenizer behavior, inline suppressions,
// baseline round-trips, and a meta-test asserting the live tree lints
// clean against the checked-in baseline.
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "msim_lint/lint.hpp"

namespace {

using namespace msim::lint;

std::string read_fixture(const std::string& name) {
  const std::string path = std::string(MSIM_LINT_FIXTURE_DIR) + "/" + name;
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in) << "missing fixture " << path;
  std::ostringstream text;
  text << in.rdbuf();
  return text.str();
}

/// Lint one fixture as if it lived at `repo_path` inside the tree.
LintResult lint_fixture(const std::string& repo_path,
                        const std::string& fixture,
                        const std::map<std::string, Severity>& overrides = {}) {
  return run_rules({SourceFile{repo_path, read_fixture(fixture)}}, overrides);
}

std::vector<std::string> rules_of(const LintResult& result) {
  std::vector<std::string> rules;
  for (const Finding& finding : result.findings) rules.push_back(finding.rule);
  return rules;
}

// --- one known violation per rule family ------------------------------

TEST(MsimLint, FlagsAmbientRandomnessInLibrary) {
  const LintResult result =
      lint_fixture("src/fixture/draw.cpp", "determinism_random.cpp");
  ASSERT_EQ(result.findings.size(), 1u);
  EXPECT_EQ(result.findings[0].rule, "determinism.random");
  EXPECT_EQ(result.findings[0].line, 3);
  EXPECT_EQ(result.findings[0].severity, Severity::Error);
}

TEST(MsimLint, RandomRuleDoesNotApplyOutsideLibrary) {
  const LintResult in_tests =
      lint_fixture("tests/fixture/draw.cpp", "determinism_random.cpp");
  EXPECT_TRUE(in_tests.findings.empty());
  const LintResult in_rng =
      lint_fixture("src/common/rng_fixture.cpp", "determinism_random.cpp");
  EXPECT_TRUE(in_rng.findings.empty()) << "src/common/rng* is allowlisted";
}

TEST(MsimLint, FlagsWallClockReads) {
  const LintResult result =
      lint_fixture("src/fixture/stamp.cpp", "determinism_wall_clock.cpp");
  ASSERT_EQ(result.findings.size(), 1u);
  EXPECT_EQ(result.findings[0].rule, "determinism.wall-clock");
  EXPECT_EQ(result.findings[0].line, 3);
}

TEST(MsimLint, FlagsUnorderedContainerIteration) {
  const LintResult result =
      lint_fixture("src/fixture/tally.cpp", "determinism_unordered.cpp");
  ASSERT_EQ(result.findings.size(), 1u);
  EXPECT_EQ(result.findings[0].rule, "determinism.unordered-iteration");
  EXPECT_EQ(result.findings[0].line, 10);
  EXPECT_NE(result.findings[0].message.find("weights_"), std::string::npos);
}

TEST(MsimLint, FlagsSpecFieldMissingFromKeyFunction) {
  const LintResult result = lint_fixture("src/pipeline/fixture_keys.cpp",
                                         "cache_key_missing_field.cpp");
  ASSERT_EQ(result.findings.size(), 1u);
  EXPECT_EQ(result.findings[0].rule, "cache-key.missing-field");
  EXPECT_NE(result.findings[0].message.find("'gamma'"), std::string::npos);
}

TEST(MsimLint, DiscoversNewSpecStructWithoutKeyAnnotation) {
  // PrefetchOptions is not on any curated list; the rule discovers it
  // from the unannotated hash function and reports at the struct def.
  const LintResult result = lint_fixture("src/pipeline/fixture_spec.hpp",
                                         "cache_key_uncovered.hpp");
  ASSERT_EQ(result.findings.size(), 1u) << render_diagnostics(result);
  EXPECT_EQ(result.findings[0].rule, "cache-key.uncovered-struct");
  EXPECT_EQ(result.findings[0].line, 13);
  EXPECT_NE(result.findings[0].message.find("PrefetchOptions"),
            std::string::npos);
}

TEST(MsimLint, StructDefinitionAloneIsNotASpecStruct) {
  // A struct nobody hashes is not a cache-key concern, even one that
  // shares its name with a real spec struct elsewhere.
  const std::string source =
      "namespace simulate {\n"
      "struct ExecutorOptions {\n"
      "  bool apply_tlb = true;\n"
      "  double noise_amplitude = 0.08;\n"
      "};\n"
      "}\n";
  const LintResult result =
      run_rules({SourceFile{"src/simulate/fixture_spec.hpp", source}});
  EXPECT_TRUE(result.findings.empty()) << render_diagnostics(result);
}

TEST(MsimLint, UncoveredStructHonorsInlineAllowAtDefinition) {
  // A deliberately partial key (e.g. a fingerprint) documents itself
  // with an allow directive at the struct definition site.
  const std::string source =
      "struct Fnv1a { Fnv1a& update_bool(bool v); };\n"
      "// msim-lint: allow(cache-key.uncovered-struct)\n"
      "struct PartialSpec { bool alpha = true; bool beta = false; };\n"
      "void partial_key(Fnv1a& h, const PartialSpec& s) {\n"
      "  h.update_bool(s.alpha);\n"
      "}\n";
  const LintResult result =
      run_rules({SourceFile{"src/pipeline/fixture_partial.cpp", source}});
  EXPECT_TRUE(result.findings.empty()) << render_diagnostics(result);
  EXPECT_EQ(result.suppressed, 1);
}

TEST(MsimLint, FlagsStdoutWritesInLibrary) {
  const LintResult result =
      lint_fixture("src/fixture/announce.cpp", "stdout_in_library.cpp");
  ASSERT_EQ(result.findings.size(), 1u);
  EXPECT_EQ(result.findings[0].rule, "stdout.in-library");
  EXPECT_EQ(result.findings[0].line, 5);
}

TEST(MsimLint, FlagsCoutInBench) {
  const LintResult result =
      lint_fixture("bench/fixture_emit.cpp", "stdout_cout.cpp");
  ASSERT_EQ(result.findings.size(), 1u);
  EXPECT_EQ(result.findings[0].rule, "stdout.cout");
}

TEST(MsimLint, FlagsDiagnosticPrefixOnStdoutButNotTableLines) {
  const LintResult result =
      lint_fixture("tools/fixture_fail.cpp", "stdout_diagnostic.cpp");
  ASSERT_EQ(result.findings.size(), 1u) << render_diagnostics(result);
  EXPECT_EQ(result.findings[0].rule, "stdout.diagnostic");
  EXPECT_EQ(result.findings[0].line, 5);  // the "Metric error:" table
                                          // line on 9 must not fire
}

TEST(MsimLint, FlagsRuntimeComputedTelemetryNames) {
  const LintResult result =
      lint_fixture("src/fixture/bump.cpp", "obs_name_literal.cpp");
  ASSERT_EQ(result.findings.size(), 1u);
  EXPECT_EQ(result.findings[0].rule, "obs.name-literal");
  EXPECT_EQ(result.findings[0].line, 10);
}

TEST(MsimLint, FlagsNonDottedLowercaseNames) {
  const LintResult result =
      lint_fixture("src/fixture/bump.cpp", "obs_name_format.cpp");
  ASSERT_EQ(result.findings.size(), 1u);
  EXPECT_EQ(result.findings[0].rule, "obs.name-format");
  EXPECT_NE(result.findings[0].message.find("CacheHits"), std::string::npos);
}

TEST(MsimLint, FlagsOneNameRegisteredAsTwoInstrumentKinds) {
  const LintResult result =
      lint_fixture("src/fixture/record.cpp", "obs_name_collision.cpp");
  ASSERT_EQ(result.findings.size(), 1u);
  EXPECT_EQ(result.findings[0].rule, "obs.name-collision");
  EXPECT_EQ(result.findings[0].line, 13);
}

TEST(MsimLint, FlagsBannedUnsafeFunctions) {
  // The unsafe rule applies in every scanned directory, tests included.
  for (const char* path : {"src/fixture/words.cpp", "tests/fixture.cpp"}) {
    const LintResult result = lint_fixture(path, "unsafe_banned.cpp");
    ASSERT_EQ(result.findings.size(), 1u) << path;
    EXPECT_EQ(result.findings[0].rule, "unsafe.banned-function");
    EXPECT_EQ(result.findings[0].line, 5);
  }
}

TEST(MsimLint, CleanFixtureProducesNoFindings) {
  const LintResult result =
      lint_fixture("src/fixture/clean.cpp", "clean.cpp");
  EXPECT_TRUE(result.findings.empty()) << render_diagnostics(result);
  EXPECT_EQ(result.suppressed, 0);
}

// --- suppression ------------------------------------------------------

TEST(MsimLint, InlineAllowSuppressesSameLineAndNextLine) {
  const LintResult result =
      lint_fixture("src/fixture/suppressed.cpp", "suppressed.cpp");
  EXPECT_TRUE(result.findings.empty()) << render_diagnostics(result);
  EXPECT_EQ(result.suppressed, 2);
}

TEST(MsimLint, AllowDirectiveIsRuleSpecific) {
  // An allow() for a different rule must not mask the finding.
  const std::string source =
      "int draw() {\n"
      "  return rand() % 6;  // msim-lint: allow(determinism.wall-clock)\n"
      "}\n";
  const LintResult result =
      run_rules({SourceFile{"src/fixture/draw.cpp", source}});
  ASSERT_EQ(result.findings.size(), 1u);
  EXPECT_EQ(result.findings[0].rule, "determinism.random");
  EXPECT_EQ(result.suppressed, 0);
}

// --- severity ---------------------------------------------------------

TEST(MsimLint, SeverityOverrideDowngradesToWarning) {
  const LintResult result =
      lint_fixture("src/fixture/draw.cpp", "determinism_random.cpp",
                   {{"determinism.random", Severity::Warning}});
  ASSERT_EQ(result.findings.size(), 1u);
  EXPECT_EQ(result.findings[0].severity, Severity::Warning);
  EXPECT_EQ(result.active_errors(), 0);
  EXPECT_EQ(result.active_warnings(), 1);
}

// --- tokenizer --------------------------------------------------------

TEST(MsimLint, LexerStripsCommentsAndPreprocessorLines) {
  const LexedFile lexed = lex(SourceFile{
      "src/x.cpp",
      "#include <unordered_map>\n"
      "// rand() in a comment\n"
      "/* time(nullptr) in a block */\n"
      "int x = 1;\n"});
  for (const Token& tok : lexed.tokens) {
    EXPECT_NE(tok.text, "rand");
    EXPECT_NE(tok.text, "unordered_map");
  }
  ASSERT_GE(lexed.tokens.size(), 4u);
  EXPECT_EQ(lexed.tokens[0].text, "int");
  EXPECT_EQ(lexed.tokens[0].line, 4);
}

TEST(MsimLint, LexerKeepsStringBodiesOutOfIdentifierSpace) {
  const LexedFile lexed = lex(SourceFile{
      "src/x.cpp", "const char* s = \"rand() strtok sprintf\";\n"
                   "const char* r = R\"(time(nullptr))\";\n"});
  int strings = 0;
  for (const Token& tok : lexed.tokens) {
    if (tok.kind == TokKind::String) ++strings;
    EXPECT_FALSE(tok.kind == TokKind::Identifier && tok.text == "rand");
  }
  EXPECT_EQ(strings, 2);
}

TEST(MsimLint, LexerHarvestsDirectives) {
  const LexedFile lexed = lex(SourceFile{
      "src/x.cpp",
      "// msim-lint: allow(determinism.random, unsafe.banned-function)\n"
      "int x;\n"});
  ASSERT_EQ(lexed.allows.count(1), 1u);
  EXPECT_EQ(lexed.allows.at(1).size(), 2u);
  EXPECT_EQ(lexed.allows.at(1)[0], "determinism.random");
  EXPECT_EQ(lexed.allows.at(1)[1], "unsafe.banned-function");
}

// --- baseline ---------------------------------------------------------

TEST(MsimLint, BaselineRoundTripMarksEveryGrandfatheredFinding) {
  const std::vector<SourceFile> corpus = {
      SourceFile{"src/fixture/draw.cpp", read_fixture("determinism_random.cpp")},
      SourceFile{"src/fixture/stamp.cpp",
                 read_fixture("determinism_wall_clock.cpp")},
  };
  LintResult result = run_rules(corpus);
  ASSERT_EQ(result.findings.size(), 2u);
  ASSERT_EQ(result.active_errors(), 2);

  const std::string rendered = render_baseline(result.findings);
  const Baseline baseline = parse_baseline(rendered);
  EXPECT_EQ(baseline.size(), 2u);

  LintResult again = run_rules(corpus);
  apply_baseline(again, baseline);
  EXPECT_EQ(again.active_errors(), 0);
  for (const Finding& finding : again.findings) {
    EXPECT_TRUE(finding.baselined);
  }
}

TEST(MsimLint, BaselineCountsPinDuplicateFindings) {
  // Two identical violations share a fingerprint; a baseline entry with
  // count 1 grandfathers only the first.
  const std::string source =
      "int a() { return rand(); }\n"
      "int b() { return rand(); }\n";
  const SourceFile file{"src/fixture/two.cpp", source};
  LintResult result = run_rules({file});
  ASSERT_EQ(result.findings.size(), 2u);
  EXPECT_EQ(fingerprint(result.findings[0]), fingerprint(result.findings[1]));

  Baseline one_entry;
  one_entry[fingerprint(result.findings[0])] = 1;
  apply_baseline(result, one_entry);
  EXPECT_EQ(result.active_errors(), 1);
  EXPECT_TRUE(result.findings[0].baselined);
  EXPECT_FALSE(result.findings[1].baselined);
}

TEST(MsimLint, BaselineParserIgnoresCommentsAndGarbage) {
  const Baseline baseline = parse_baseline(
      "# comment\n"
      "\n"
      "deadbeefdeadbeef 2 determinism.random src/x.cpp message text\n"
      "not-a-count zero\n");
  ASSERT_EQ(baseline.size(), 1u);
  EXPECT_EQ(baseline.at("deadbeefdeadbeef"), 2);
}

// --- key-for positive path -------------------------------------------

TEST(MsimLint, CompleteKeyFunctionProducesNoFindings) {
  const std::string source =
      "struct Hasher { void update_bool(bool v); void update_double(double "
      "v); };\n"
      "namespace demo {\n"
      "struct SpecOptions { bool alpha = true; double beta = 0.5; };\n"
      "// msim-lint: key-for(demo::SpecOptions)\n"
      "void hash_spec(Hasher& h, const SpecOptions& s) {\n"
      "  h.update_bool(s.alpha);\n"
      "  h.update_double(s.beta);\n"
      "}\n"
      "}\n";
  const LintResult result =
      run_rules({SourceFile{"src/pipeline/fixture_ok.cpp", source}});
  EXPECT_TRUE(result.findings.empty()) << render_diagnostics(result);
}

// --- v2: protocol-schema drift ----------------------------------------

TEST(MsimLintProto, FlagsOneSidedProtocol) {
  const LintResult result =
      lint_fixture("src/fixture/wire.cpp", "proto_one_sided.cpp");
  ASSERT_EQ(rules_of(result),
            std::vector<std::string>{"proto.one-sided"})
      << render_diagnostics(result);
  EXPECT_NE(result.findings[0].message.find("fixture.wire"),
            std::string::npos);
}

TEST(MsimLintProto, FlagsWrittenButNeverReadKey) {
  const LintResult result =
      lint_fixture("src/fixture/rpc.cpp", "proto_unread_key.cpp");
  ASSERT_EQ(result.findings.size(), 1u) << render_diagnostics(result);
  EXPECT_EQ(result.findings[0].rule, "proto.unread-key");
  EXPECT_NE(result.findings[0].message.find("\"extra\""), std::string::npos);
}

TEST(MsimLintProto, FlagsReadButNeverWrittenKey) {
  const LintResult result =
      lint_fixture("src/fixture/rpc.cpp", "proto_unwritten_key.cpp");
  ASSERT_EQ(result.findings.size(), 1u) << render_diagnostics(result);
  EXPECT_EQ(result.findings[0].rule, "proto.unwritten-key");
  EXPECT_NE(result.findings[0].message.find("\"ghost\""), std::string::npos);
}

TEST(MsimLintProto, FlagsStringWrittenNumberRead) {
  const LintResult result =
      lint_fixture("src/fixture/rpc.cpp", "proto_type_mismatch.cpp");
  ASSERT_EQ(result.findings.size(), 1u) << render_diagnostics(result);
  EXPECT_EQ(result.findings[0].rule, "proto.type-mismatch");
  EXPECT_NE(result.findings[0].message.find("\"name\""), std::string::npos);
}

TEST(MsimLintProto, WriterAndReaderMaySitInDifferentFiles) {
  // The pass consumes the whole-repo model: a writer in src/ pairs with a
  // reader in tests/ and a balanced key set is silent.
  const std::string writer =
      "#include <string>\n"
      "// msim-lint: proto(fixture.split, writer)\n"
      "std::string encode(int id) {\n"
      "  std::string out = \"{\\\"id\\\":\";\n"
      "  out += std::to_string(id);\n"
      "  out += '}';\n"
      "  return out;\n"
      "}\n";
  const std::string reader =
      "struct Doc { double number_or(const char*, double) const; };\n"
      "// msim-lint: proto(fixture.split, reader)\n"
      "double decode(const Doc& doc) {\n"
      "  return doc.number_or(\"id\", 0.0);\n"
      "}\n";
  const LintResult result =
      run_rules({SourceFile{"src/fixture/wire.cpp", writer},
                 SourceFile{"tests/fixture_wire.cpp", reader}});
  EXPECT_TRUE(result.findings.empty()) << render_diagnostics(result);
}

// --- v2: env-knob registry --------------------------------------------

TEST(MsimLintEnv, FlagsRawGetenv) {
  const LintResult result =
      lint_fixture("src/fixture/knobs.cpp", "env_raw_getenv.cpp");
  ASSERT_EQ(result.findings.size(), 1u) << render_diagnostics(result);
  EXPECT_EQ(result.findings[0].rule, "env.raw-getenv");
  EXPECT_NE(result.findings[0].message.find("MSIM_FIXTURE_DIR"),
            std::string::npos);
}

TEST(MsimLintEnv, FlagsUnregisteredKnob) {
  const LintResult result =
      lint_fixture("src/fixture/knobs.cpp", "env_unregistered.cpp");
  ASSERT_EQ(result.findings.size(), 1u) << render_diagnostics(result);
  EXPECT_EQ(result.findings[0].rule, "env.unregistered");
  EXPECT_NE(result.findings[0].message.find("MSIM_CANARY_KNOB"),
            std::string::npos);
}

TEST(MsimLintEnv, RegistryDrivesParserAndDocChecks) {
  const std::string source =
      "unsigned env_unsigned(const char* name, unsigned fallback);\n"
      "unsigned knob() { return env_unsigned(\"MSIM_CANARY_KNOB\", 1u); }\n";
  RepoInputs inputs;
  inputs.docs.emplace("README.md", "MSIM_CANARY_KNOB does things.\n");

  // Registered with the matching parser and a real doc mention: silent.
  inputs.env_registry = "MSIM_CANARY_KNOB unsigned 1 README.md\n";
  LintResult result = run_rules(
      {SourceFile{"src/fixture/knobs.cpp", source}}, {}, &inputs);
  EXPECT_TRUE(result.findings.empty()) << render_diagnostics(result);

  // Registered under a different parser family: parser mismatch.
  inputs.env_registry = "MSIM_CANARY_KNOB double 1 README.md\n";
  result = run_rules({SourceFile{"src/fixture/knobs.cpp", source}}, {},
                     &inputs);
  ASSERT_EQ(result.findings.size(), 1u) << render_diagnostics(result);
  EXPECT_EQ(result.findings[0].rule, "env.parser-mismatch");

  // Doc anchor never mentions the knob: undocumented.
  inputs.env_registry = "MSIM_CANARY_KNOB unsigned 1 README.md\n";
  inputs.docs["README.md"] = "nothing to see here\n";
  result = run_rules({SourceFile{"src/fixture/knobs.cpp", source}}, {},
                     &inputs);
  ASSERT_EQ(result.findings.size(), 1u) << render_diagnostics(result);
  EXPECT_EQ(result.findings[0].rule, "env.undocumented");

  // A row no scanned source reads: stale.
  inputs.env_registry =
      "MSIM_CANARY_KNOB unsigned 1 README.md\n"
      "MSIM_GHOST_KNOB unsigned 0 README.md\n";
  inputs.docs["README.md"] =
      "MSIM_CANARY_KNOB and MSIM_GHOST_KNOB do things.\n";
  result = run_rules({SourceFile{"src/fixture/knobs.cpp", source}}, {},
                     &inputs);
  ASSERT_EQ(result.findings.size(), 1u) << render_diagnostics(result);
  EXPECT_EQ(result.findings[0].rule, "env.registry-stale");
  EXPECT_EQ(result.findings[0].file, "tools/msim_lint/env_registry.txt");
  EXPECT_EQ(result.findings[0].line, 2);
}

TEST(MsimLintEnv, RegistryParsesAndRendersRoundTrip) {
  const std::vector<EnvKnob> knobs = parse_env_registry(
      "# comment line\n"
      "\n"
      "MSIM_ALPHA unsigned 4 README.md\n"
      "malformed-row-with-too-few-fields\n"
      "MSIM_BETA string - docs/FORMATS.md\n");
  ASSERT_EQ(knobs.size(), 2u);
  EXPECT_EQ(knobs[0].name, "MSIM_ALPHA");
  EXPECT_EQ(knobs[0].parser, "unsigned");
  EXPECT_EQ(knobs[0].fallback, "4");
  EXPECT_EQ(knobs[0].doc, "README.md");
  EXPECT_EQ(knobs[0].line, 3);
  EXPECT_EQ(knobs[1].name, "MSIM_BETA");
  EXPECT_EQ(knobs[1].line, 5);

  const std::string table = render_env_registry_markdown(knobs);
  EXPECT_NE(table.find("| Knob | Parser | Default |"), std::string::npos);
  EXPECT_NE(table.find("| `MSIM_ALPHA` | unsigned | `4` | README.md |"),
            std::string::npos);
  EXPECT_NE(table.find("`MSIM_BETA`"), std::string::npos);
}

// --- v2: concurrency discipline ---------------------------------------

TEST(MsimLintConc, FlagsRawLockOutsideGuards) {
  const LintResult result =
      lint_fixture("src/fixture/locks.cpp", "conc_raw_lock.cpp");
  ASSERT_EQ(result.findings.size(), 1u) << render_diagnostics(result);
  EXPECT_EQ(result.findings[0].rule, "conc.raw-lock");
}

TEST(MsimLintConc, DeclaredGuardMayLockAndUnlock) {
  // Dropping a unique_lock around a blocking wait is the sanctioned
  // pattern; .lock()/.unlock() on the declared guard is silent.
  const std::string source =
      "#include <mutex>\n"
      "void wait(std::mutex& m, bool& flag) {\n"
      "  std::unique_lock<std::mutex> guard(m);\n"
      "  guard.unlock();\n"
      "  guard.lock();\n"
      "  flag = true;\n"
      "}\n";
  const LintResult result =
      run_rules({SourceFile{"src/fixture/locks.cpp", source}});
  EXPECT_TRUE(result.findings.empty()) << render_diagnostics(result);
}

TEST(MsimLintConc, FlagsFlockAcquireWithoutRelease) {
  const LintResult result =
      lint_fixture("src/fixture/filelock.cpp", "conc_flock_unpaired.cpp");
  ASSERT_EQ(result.findings.size(), 1u) << render_diagnostics(result);
  EXPECT_EQ(result.findings[0].rule, "conc.flock-unpaired");
}

TEST(MsimLintConc, PairedFlockIsSilent) {
  const std::string source =
      "#include <sys/file.h>\n"
      "void with_lock(int fd) {\n"
      "  ::flock(fd, LOCK_EX);\n"
      "  ::flock(fd, LOCK_UN);\n"
      "}\n";
  const LintResult result =
      run_rules({SourceFile{"src/fixture/filelock.cpp", source}});
  EXPECT_TRUE(result.findings.empty()) << render_diagnostics(result);
}

TEST(MsimLintConc, FlagsDetachedThreads) {
  const LintResult result =
      lint_fixture("src/fixture/threads.cpp", "conc_detached_thread.cpp");
  ASSERT_EQ(result.findings.size(), 1u) << render_diagnostics(result);
  EXPECT_EQ(result.findings[0].rule, "conc.detached-thread");
}

TEST(MsimLintConc, FlagsMutableStaticWithoutGuardAnnotation) {
  const LintResult result =
      lint_fixture("src/fixture/state.cpp", "conc_mutable_static.cpp");
  ASSERT_EQ(result.findings.size(), 1u) << render_diagnostics(result);
  EXPECT_EQ(result.findings[0].rule, "conc.mutable-static");
  EXPECT_NE(result.findings[0].message.find("g_last_error"),
            std::string::npos);
}

TEST(MsimLintConc, GuardedByAnnotationNamingARealMutexIsSilent) {
  const std::string source =
      "#include <mutex>\n"
      "#include <string>\n"
      "namespace fixture {\n"
      "std::mutex g_mutex;\n"
      "// msim-lint: guarded-by(g_mutex)\n"
      "std::string g_last_error;\n"
      "}\n";
  const LintResult result =
      run_rules({SourceFile{"src/fixture/state.cpp", source}});
  EXPECT_TRUE(result.findings.empty()) << render_diagnostics(result);
}

TEST(MsimLintConc, GuardedByNamingAMissingMutexStillFlags) {
  const std::string source =
      "#include <string>\n"
      "namespace fixture {\n"
      "// msim-lint: guarded-by(g_no_such_mutex)\n"
      "std::string g_last_error;\n"
      "}\n";
  const LintResult result =
      run_rules({SourceFile{"src/fixture/state.cpp", source}});
  ASSERT_EQ(result.findings.size(), 1u) << render_diagnostics(result);
  EXPECT_EQ(result.findings[0].rule, "conc.mutable-static");
  EXPECT_NE(result.findings[0].message.find("g_no_such_mutex"),
            std::string::npos);
}

// --- v2: layer DAG ----------------------------------------------------

TEST(MsimLintLayer, FlagsIncludePointingUpTheDag) {
  const LintResult result =
      lint_fixture("src/metrics/canary.cpp", "layer_back_edge.cpp");
  ASSERT_EQ(result.findings.size(), 1u) << render_diagnostics(result);
  EXPECT_EQ(result.findings[0].rule, "layer.back-edge");
  EXPECT_NE(result.findings[0].message.find("serve"), std::string::npos);
}

TEST(MsimLintLayer, DownwardAndSameRankIncludesAreSilent) {
  const std::string source =
      "#include \"common/check.hpp\"\n"
      "#include \"machine/registry.hpp\"\n"
      "#include \"memsim/cache.hpp\"\n"
      "int fixture_value() { return 1; }\n";
  const LintResult result =
      run_rules({SourceFile{"src/convolve/fixture.cpp", source}});
  EXPECT_TRUE(result.findings.empty()) << render_diagnostics(result);
}

TEST(MsimLintLayer, AllowDirectiveOnTheIncludeLineSanctionsABackEdge) {
  const std::string source =
      "#include \"pipeline/study_builder.hpp\"  "
      "// msim-lint: allow(layer.back-edge)\n"
      "int fixture_value() { return 1; }\n";
  const LintResult result =
      run_rules({SourceFile{"src/metrics/fixture.cpp", source}});
  EXPECT_TRUE(result.findings.empty()) << render_diagnostics(result);
  EXPECT_EQ(result.suppressed, 1);
}

TEST(MsimLintLayer, LexerHarvestsQuotedIncludesOnly) {
  const LexedFile lexed = lex(SourceFile{
      "src/metrics/x.cpp",
      "#include <vector>\n"
      "#include \"common/check.hpp\"\n"
      "#include \"serve/server.hpp\"  // trailing words\n"});
  ASSERT_EQ(lexed.includes.size(), 2u);
  EXPECT_EQ(lexed.includes[0].path, "common/check.hpp");
  EXPECT_EQ(lexed.includes[0].line, 2);
  EXPECT_EQ(lexed.includes[1].path, "serve/server.hpp");
  EXPECT_EQ(lexed.includes[1].line, 3);
}

TEST(MsimLint, LexerHarvestsProtoAndGuardedByDirectives) {
  const LexedFile lexed = lex(SourceFile{
      "src/x.cpp",
      "// msim-lint: proto(fixture.wire, writer)\n"
      "int encode();\n"
      "// msim-lint: guarded-by(g_mutex)\n"
      "int g_state;\n"});
  ASSERT_EQ(lexed.protos.size(), 1u);
  EXPECT_EQ(lexed.protos[0].name, "fixture.wire");
  EXPECT_EQ(lexed.protos[0].side, "writer");
  EXPECT_EQ(lexed.protos[0].line, 1);
  ASSERT_EQ(lexed.guarded_by.count(3), 1u);
  ASSERT_EQ(lexed.guarded_by.at(3).size(), 1u);
  EXPECT_EQ(lexed.guarded_by.at(3).front(), "g_mutex");
}

// --- the live tree ----------------------------------------------------

TEST(MsimLint, LiveTreeLintsCleanAgainstCheckedInBaseline) {
  const std::vector<SourceFile> files = collect_tree(MSIM_REPO_ROOT);
  ASSERT_GT(files.size(), 100u) << "tree walk found suspiciously few files";

  // The whole-repo passes need the checked-in env registry and the docs;
  // this is exactly what the msim-lint binary loads.
  const RepoInputs inputs = load_repo_inputs(MSIM_REPO_ROOT);
  EXPECT_FALSE(inputs.env_registry.empty()) << "env_registry.txt missing";
  EXPECT_EQ(inputs.docs.count("README.md"), 1u);

  LintResult result = run_rules(files, {}, &inputs);
  std::ifstream in(std::string(MSIM_REPO_ROOT) +
                   "/tools/msim_lint/baseline.txt");
  if (in) {
    std::ostringstream text;
    text << in.rdbuf();
    apply_baseline(result, parse_baseline(text.str()));
  }
  EXPECT_EQ(result.active_errors(), 0)
      << "new msim-lint findings:\n"
      << render_diagnostics(result)
      << "fix them or (for deliberate exceptions) add an inline allow "
         "directive / baseline entry";
}

TEST(MsimLint, TreeWalkSkipsFixtureCorpus) {
  const std::vector<SourceFile> files = collect_tree(MSIM_REPO_ROOT);
  for (const SourceFile& file : files) {
    EXPECT_EQ(file.path.find("lint_fixtures"), std::string::npos)
        << file.path;
  }
}

}  // namespace
