// Trace-driven hierarchy simulation, and its agreement with the analytic
// bandwidth surface — the model-vs-reference cross-validation.
#include <gtest/gtest.h>

#include <cmath>

#include "common/units.hpp"
#include "machine/registry.hpp"
#include "memsim/bandwidth_model.hpp"
#include "memsim/hierarchy_sim.hpp"
#include "test_support.hpp"

namespace msim::memsim {
namespace {

StreamSpec random_spec(std::uint64_t ws) {
  StreamSpec spec;
  spec.working_set_bytes = ws;
  spec.element_bytes = 8;
  spec.components = {{.stride_bytes = 0, .weight = 1.0}};
  return spec;
}

StreamSpec unit_spec(std::uint64_t ws) {
  StreamSpec spec;
  spec.working_set_bytes = ws;
  spec.element_bytes = 8;
  spec.components = {{.stride_bytes = 8, .weight = 1.0}};
  return spec;
}

TEST(HierarchySim, FractionsSumToOne) {
  const auto& machine = machine::find("NAVO_655");
  const auto result = simulate_stream(machine, random_spec(1 * MiB));
  double total = 0.0;
  for (double f : result.service_fractions()) total += f;
  EXPECT_NEAR(total, 1.0, 1e-12);
  EXPECT_GT(result.bandwidth, 0.0);
}

TEST(HierarchySim, DeterministicPerSeed) {
  const auto& machine = machine::find("ARL_Xeon");
  const auto a = simulate_stream(machine, random_spec(4 * MiB));
  const auto b = simulate_stream(machine, random_spec(4 * MiB));
  EXPECT_EQ(a.hierarchy.hits_per_level, b.hierarchy.hits_per_level);
  EXPECT_DOUBLE_EQ(a.bandwidth, b.bandwidth);
}

/// Cross-validation: for random access, the analytic service fractions are
/// a probabilistic-residency model; the trace-driven simulation must agree
/// level by level within a few percent on every machine.
class CrossValidation : public ::testing::TestWithParam<std::string> {};

TEST_P(CrossValidation, RandomServiceFractionsMatchAnalyticModel) {
  const auto& machine = machine::find(GetParam());
  for (const std::uint64_t ws : {256 * KiB, 4 * MiB, 32 * MiB}) {
    TraceDrivenOptions options;
    options.warmup_refs = 1u << 17;  // caches must reach steady state
    options.measured_refs = 1u << 17;
    const auto measured =
        simulate_stream(machine, random_spec(ws), options)
            .service_fractions();
    const auto analytic =
        level_service_fractions(machine, ws, StrideClass::Random);
    ASSERT_EQ(measured.size(), analytic.size());
    for (std::size_t level = 0; level < measured.size(); ++level) {
      EXPECT_NEAR(measured[level], analytic[level], 0.08)
          << GetParam() << " ws=" << format_bytes(ws) << " level " << level;
    }
  }
}

TEST_P(CrossValidation, TinyUnitSweepIsL1Resident) {
  const auto& machine = machine::find(GetParam());
  const std::uint64_t ws = machine.caches[0].size_bytes / 4;
  const auto measured = simulate_stream(machine, unit_spec(ws))
                            .service_fractions();
  EXPECT_GT(measured[0], 0.99) << GetParam();
  // And the analytic model agrees.
  EXPECT_NEAR(
      level_service_fractions(machine, ws, StrideClass::Unit)[0], 1.0,
      1e-9);
}

TEST_P(CrossValidation, HugeUnitSweepMissesOncePerLine) {
  // Per-reference accounting differs from the analytic (bandwidth-view)
  // model for streams: a unit-stride sweep misses to memory once per cache
  // line and then hits in L1 for the rest of the line. The trace-driven
  // memory fraction is therefore element/line, while the analytic model
  // says "all bytes come from memory" — the same physics expressed per
  // reference versus per byte.
  const auto& machine = machine::find(GetParam());
  const std::uint64_t ws = machine.total_cache_bytes() * 8;
  TraceDrivenOptions options;
  options.warmup_refs = 1u << 16;
  options.measured_refs = 1u << 17;
  const auto measured =
      simulate_stream(machine, unit_spec(ws), options).service_fractions();
  // One memory miss per line of the *outermost* (largest-line) level:
  // its allocation covers the subsequent inner-level misses.
  std::uint32_t largest_line = 0;
  for (const auto& level : machine.caches) {
    largest_line = std::max(largest_line, level.line_bytes);
  }
  const double expected_miss_fraction = 8.0 / largest_line;
  EXPECT_NEAR(measured.back(), expected_miss_fraction,
              expected_miss_fraction * 0.2)
      << GetParam();
  EXPECT_GT(measured[0], 0.8) << "spatial locality serves most refs in L1";
  // The analytic model charges the whole stream to memory bandwidth.
  EXPECT_NEAR(
      level_service_fractions(machine, ws, StrideClass::Unit).back(), 1.0,
      1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    AllMachines, CrossValidation,
    ::testing::ValuesIn(msim::testing::all_machine_names()),
    [](const auto& info) {
      std::string name = info.param;
      for (char& ch : name) {
        if (ch == '.' || ch == '-') ch = '_';
      }
      return name;
    });

TEST(HierarchySim, TlbMissesCounted) {
  const auto& machine = machine::find("ARL_Xeon");  // 256 KiB TLB reach
  const auto result = simulate_stream(machine, random_spec(16 * MiB));
  EXPECT_GT(result.tlb_misses, result.hierarchy.total / 2);
  TraceDrivenOptions no_tlb;
  no_tlb.include_tlb = false;
  const auto without =
      simulate_stream(machine, random_spec(16 * MiB), no_tlb);
  EXPECT_EQ(without.tlb_misses, 0u);
  EXPECT_GT(without.bandwidth, result.bandwidth);
}

TEST(HierarchySim, DependencyProfileReducesBandwidth) {
  const auto& machine = machine::find("ARL_Altix");
  TraceDrivenOptions serial;
  serial.profile.dependency = DependencyClass::Serial;
  const auto free = simulate_stream(machine, unit_spec(64 * KiB));
  const auto chained =
      simulate_stream(machine, unit_spec(64 * KiB), serial);
  EXPECT_LT(chained.bandwidth, free.bandwidth);
}

}  // namespace
}  // namespace msim::memsim
