// Native host probe kernels: they must produce real, positive bandwidths
// and honor their working-set/stride contracts on whatever machine runs
// the test suite.
#include <gtest/gtest.h>

#include "common/check.hpp"
#include "probes/native.hpp"

namespace msim::probes::native {
namespace {

TEST(NativeStream, TriadProducesBandwidth) {
  const auto result = stream_triad(1 << 16, 4);
  EXPECT_GT(result.seconds, 0.0);
  EXPECT_DOUBLE_EQ(result.bytes, 3.0 * (1 << 16) * 8 * 4);
  EXPECT_GT(result.bandwidth(), 1e7);  // any machine beats 10 MB/s
}

TEST(NativeStream, RejectsEmptyWork) {
  EXPECT_THROW((void)stream_triad(0, 1), precondition_error);
  EXPECT_THROW((void)stream_triad(16, 0), precondition_error);
}

TEST(NativeGups, UpdatesAreCounted) {
  const auto result = random_update(16, 1 << 16);
  EXPECT_GT(result.seconds, 0.0);
  EXPECT_DOUBLE_EQ(result.bytes, (1 << 16) * 16.0);
  EXPECT_THROW((void)random_update(2, 10), precondition_error);
}

TEST(NativeStridedRead, CountsTouchedElements) {
  const auto unit = strided_read(1 << 16, 1, 2);
  // stride 1, two repeats: every element read twice.
  EXPECT_DOUBLE_EQ(unit.bytes, 2.0 * (1 << 16));
  const auto strided = strided_read(1 << 16, 8, 2);
  // Multi-offset passes still touch every element once per repeat.
  EXPECT_DOUBLE_EQ(strided.bytes, 2.0 * (1 << 16));
  EXPECT_THROW((void)strided_read(1024, 0, 1), precondition_error);
}

TEST(NativeStridedRead, CacheResidentIsFasterThanMemory) {
  // A soft performance property: a 16 KiB sweep should not be slower than
  // a 64 MiB sweep (identical inner loop, smaller footprint). Allow slack
  // for timer noise in CI.
  const double small_bw = strided_read(16 << 10, 1, 512).bandwidth();
  const double large_bw = strided_read(64 << 20, 1, 1).bandwidth();
  EXPECT_GT(small_bw, large_bw * 0.5);
}

TEST(NativePointerChase, VisitsTheWholeRing) {
  // Sattolo's shuffle builds a single cycle: after exactly `slots` steps
  // the cursor returns to the start.
  const std::size_t ws = 4096;  // 512 slots
  const std::size_t slots = ws / 8;
  const auto full_loop = pointer_chase(ws, slots);
  EXPECT_EQ(full_loop.checksum, 0u) << "cycle must close after n steps";
  const auto partial = pointer_chase(ws, slots - 1);
  EXPECT_NE(partial.checksum, 0u) << "cycle must not close early";
}

TEST(NativeBranchyRead, ProducesBandwidth) {
  const auto result = branchy_read(1 << 16, 4);
  EXPECT_GT(result.bandwidth(), 1e6);
  EXPECT_DOUBLE_EQ(result.bytes, 4.0 * (1 << 16));
}

TEST(NativeMaps, SweepReportsEveryRequestedSize) {
  const std::vector<std::size_t> sizes = {16 << 10, 256 << 10, 4 << 20};
  const auto points = native_maps_sweep(sizes);
  ASSERT_EQ(points.size(), sizes.size());
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    EXPECT_EQ(points[i].working_set_bytes, sizes[i]);
    EXPECT_GT(points[i].unit_bw, 0.0);
    EXPECT_GT(points[i].chase_bw, 0.0);
    // Dependent chasing is never faster than independent streaming.
    EXPECT_LT(points[i].chase_bw, points[i].unit_bw);
  }
}

}  // namespace
}  // namespace msim::probes::native
