// Golden regression pins for the reference world.
//
// EXPERIMENTS.md documents exact Table-4 numbers for the repository's
// reference world (noise_salt = 14). These tests pin them within +-1.5
// percentage points so that accidental changes to machine constants,
// workload mixes, or model code are caught immediately — anyone changing
// the calibration must update EXPERIMENTS.md deliberately.
#include <gtest/gtest.h>

#include <map>

#include "test_support.hpp"

namespace msim {
namespace {

using metrics::Metric;

TEST(Golden, ReferenceWorldTable4) {
  const auto& study = msim::testing::shared_study();
  const auto predictions = study.evaluate(metrics::all_metrics());

  const std::map<Metric, double> documented = {
      {Metric::S1_Hpl, 97.0},
      {Metric::S2_Stream, 24.0},
      {Metric::S3_Gups, 19.0},
      {Metric::P4_Hpl, 97.0},
      {Metric::P5_HplStream, 23.0},
      {Metric::P6_HplStreamGups, 17.0},
      {Metric::P7_HplMaps, 18.0},
      {Metric::P8_HplMapsNet, 18.0},
      {Metric::P9_HplMapsNetDep, 16.0},
      {Metric::BalancedEqual, 28.0},
      {Metric::BalancedFitted, 23.0},
  };
  for (const auto& [metric, expected] : documented) {
    const double measured =
        metrics::Study::summarize(
            metrics::Study::slice_metric(predictions, metric))
            .mean_abs_error_pct;
    EXPECT_NEAR(measured, expected, 1.5)
        << metrics::description(metric)
        << " drifted from the value documented in EXPERIMENTS.md";
  }
}

TEST(Golden, ReferenceWorldProbeAnchors) {
  // STREAM/GUPS/HPL anchors for three contrasting systems.
  const auto& study = msim::testing::shared_study();
  EXPECT_NEAR(study.probe_set("ARL_Opteron").stream_bw / 1e9, 2.54, 0.3);
  EXPECT_NEAR(study.probe_set("MHPCC_690_1.3").stream_bw / 1e9, 0.65, 0.1);
  EXPECT_NEAR(study.probe_set("ARL_Altix").hpl_rmax / 1e9, 5.1, 0.1);
  EXPECT_NEAR(study.probe_set("ERDC_O3800").hpl_rmax / 1e9, 0.6, 0.05);
}

TEST(Golden, ReferenceWorldGroundTruthAnchors) {
  // A few simulated "observed" run times, pinned loosely (10%).
  const auto& observations = msim::testing::shared_study().observations();
  const std::map<std::string, double> anchors = {
      {"AVUS_Standard/32/NAVO_655", 3400.0},
      {"HYCOM_Standard/59/ARL_Altix", 1207.0},
      {"OVERFLOW2_Standard/32/ARL_Altix", 4243.0},
      {"RFCTH_Standard/16/ASC_SC45", 3433.0},
  };
  for (const auto& [key, expected] : anchors) {
    const auto first = key.find('/');
    const auto second = key.find('/', first + 1);
    const std::string app = key.substr(0, first);
    const int nprocs =
        std::atoi(key.substr(first + 1, second - first - 1).c_str());
    const std::string machine = key.substr(second + 1);
    EXPECT_NEAR(observations.at(app, nprocs, machine), expected,
                expected * 0.10)
        << key;
  }
}

}  // namespace
}  // namespace msim
