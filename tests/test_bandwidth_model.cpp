// The analytic bandwidth surface: service fractions, stride/dependency
// effects, and monotonicity properties across all machine models.
#include <gtest/gtest.h>

#include "common/check.hpp"
#include "common/units.hpp"
#include "machine/registry.hpp"
#include "memsim/bandwidth_model.hpp"
#include "test_support.hpp"

namespace msim::memsim {
namespace {

AccessProfile profile(StrideClass stride,
                      DependencyClass dep = DependencyClass::Independent,
                      double branches = 0.0) {
  return AccessProfile{.stride = stride, .dependency = dep,
                       .branch_density = branches};
}

TEST(ServiceFractions, SumToOne) {
  const auto& machine = machine::find("NAVO_655");
  for (std::uint64_t ws : {4 * KiB, 256 * KiB, 8 * MiB, 1 * GiB}) {
    for (StrideClass stride : kAllStrideClasses) {
      const auto fractions = level_service_fractions(machine, ws, stride);
      EXPECT_EQ(fractions.size(), machine.caches.size() + 1);
      double total = 0.0;
      for (double f : fractions) {
        EXPECT_GE(f, 0.0);
        total += f;
      }
      EXPECT_NEAR(total, 1.0, 1e-12);
    }
  }
}

TEST(ServiceFractions, TinySweepServedByL1) {
  const auto& machine = machine::find("ARL_Opteron");
  const auto fractions =
      level_service_fractions(machine, 4 * KiB, StrideClass::Unit);
  EXPECT_NEAR(fractions[0], 1.0, 1e-12);
}

TEST(ServiceFractions, HugeSweepServedByMemory) {
  const auto& machine = machine::find("ARL_Opteron");
  const auto fractions = level_service_fractions(
      machine, machine.total_cache_bytes() * 16, StrideClass::Unit);
  EXPECT_NEAR(fractions.back(), 1.0, 1e-12);
}

TEST(ServiceFractions, RandomResidencyIsProportional) {
  const auto& machine = machine::find("ARL_Xeon");  // L1 8K, L2 512K
  const std::uint64_t ws = 1 * MiB;
  const auto fractions =
      level_service_fractions(machine, ws, StrideClass::Random);
  EXPECT_NEAR(fractions[0], 8.0 * KiB / ws, 1e-9);
  EXPECT_NEAR(fractions[1], (512.0 - 8.0) * KiB / ws, 1e-9);
  EXPECT_NEAR(fractions[2], 1.0 - 512.0 * KiB / ws, 1e-9);
}

TEST(LevelBandwidth, StrideOrdering) {
  const auto& machine = machine::find("NAVO_655");
  for (std::size_t level = 0; level <= machine.caches.size(); ++level) {
    const double unit =
        level_bandwidth(machine, level, profile(StrideClass::Unit));
    const double short_bw =
        level_bandwidth(machine, level, profile(StrideClass::Short));
    const double random =
        level_bandwidth(machine, level, profile(StrideClass::Random));
    EXPECT_GE(unit, short_bw);
    EXPECT_GE(short_bw, random);
  }
  EXPECT_THROW(
      (void)level_bandwidth(machine, machine.caches.size() + 1,
                            profile(StrideClass::Unit)),
      precondition_error);
}

TEST(LevelBandwidth, DependencyAndBranchDerate) {
  const auto& machine = machine::find("ARL_Altix");
  const double free =
      level_bandwidth(machine, 1, profile(StrideClass::Unit));
  const double serial = level_bandwidth(
      machine, 1, profile(StrideClass::Unit, DependencyClass::Serial));
  const double branchy = level_bandwidth(
      machine, 1,
      profile(StrideClass::Unit, DependencyClass::Independent, 0.5));
  EXPECT_NEAR(serial, free * machine.cpu.dependency_derate, 1e-6);
  EXPECT_LT(branchy, free);
  EXPECT_GT(branchy, serial);  // Altix's dependency derate is harsher
}

/// Parameterized over all machines: the unit-stride bandwidth surface is
/// non-increasing in working-set size, and random never beats unit.
class SurfaceProperty : public ::testing::TestWithParam<std::string> {};

TEST_P(SurfaceProperty, MemoryBandwidthIsTheFloor) {
  // Bandwidth may rise between inner levels (Altix's L1-bypass), but main
  // memory is always the floor, and past the last cache the curve is
  // non-increasing.
  const auto& machine = machine::find(GetParam());
  const double floor =
      sustained_bandwidth(machine, 4 * GiB, profile(StrideClass::Unit));
  double previous = 1e18;
  for (std::uint64_t ws = 2 * KiB; ws <= 512 * MiB; ws *= 2) {
    const double bw =
        sustained_bandwidth(machine, ws, profile(StrideClass::Unit));
    EXPECT_GE(bw, floor * (1.0 - 1e-9)) << format_bytes(ws);
    if (ws >= machine.caches.back().size_bytes * 2) {
      EXPECT_LE(bw, previous * (1.0 + 1e-9)) << format_bytes(ws);
      previous = bw;
    }
  }
}

TEST_P(SurfaceProperty, RandomNeverBeatsUnit) {
  const auto& machine = machine::find(GetParam());
  for (std::uint64_t ws = 2 * KiB; ws <= 512 * MiB; ws *= 4) {
    const double unit =
        sustained_bandwidth(machine, ws, profile(StrideClass::Unit));
    const double random =
        sustained_bandwidth(machine, ws, profile(StrideClass::Random));
    EXPECT_LE(random, unit + 1e-6);
  }
}

TEST_P(SurfaceProperty, DependencyAlwaysCosts) {
  const auto& machine = machine::find(GetParam());
  for (std::uint64_t ws : {8 * KiB, 1 * MiB, 64 * MiB}) {
    const double free =
        sustained_bandwidth(machine, ws, profile(StrideClass::Unit));
    const double serial = sustained_bandwidth(
        machine, ws, profile(StrideClass::Unit, DependencyClass::Serial));
    EXPECT_LT(serial, free);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllMachines, SurfaceProperty,
    ::testing::ValuesIn(msim::testing::all_machine_names()),
    [](const auto& info) {
      std::string name = info.param;
      for (char& ch : name) {
        if (ch == '.' || ch == '-') ch = '_';
      }
      return name;
    });

TEST(Surface, LimitsMatchConfiguredBandwidths) {
  const auto& machine = machine::find("ARL_Opteron");
  // Deep in L1.
  EXPECT_NEAR(sustained_bandwidth(machine, 2 * KiB,
                                  profile(StrideClass::Unit)),
              machine.caches[0].unit_stride_bw, 1e-3);
  // Deep in memory.
  EXPECT_NEAR(sustained_bandwidth(machine, 1 * GiB,
                                  profile(StrideClass::Unit)),
              machine.memory.unit_stride_bw, 1e-3);
}

TEST(AverageLatency, GrowsWithWorkingSet) {
  const auto& machine = machine::find("NAVO_655");
  const double small =
      average_latency(machine, 4 * KiB, StrideClass::Random);
  const double large =
      average_latency(machine, 1 * GiB, StrideClass::Random);
  EXPECT_LT(small, large);
  EXPECT_NEAR(large, machine.memory.latency_s, machine.memory.latency_s);
}

TEST(Surface, RejectsZeroWorkingSet) {
  const auto& machine = machine::find("NAVO_655");
  EXPECT_THROW((void)level_service_fractions(machine, 0, StrideClass::Unit),
               precondition_error);
}

}  // namespace
}  // namespace msim::memsim
