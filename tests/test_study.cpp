// The study driver: prediction plumbing, slicing, and summaries.
#include <gtest/gtest.h>

#include "common/check.hpp"
#include "machine/registry.hpp"
#include "metrics/study.hpp"
#include "test_support.hpp"

namespace msim::metrics {
namespace {

/// A reduced study (2 targets, 1 test case) for cheap structural checks.
const Study& small_study() {
  static const Study study = Study::build(
      {machine::find("ARL_Xeon"), machine::find("ARL_Opteron")},
      machine::find(machine::base_system_name()),
      {workload::find_test_case("RFCTH_Standard")});
  return study;
}

TEST(Study, SmallStudyShape) {
  const Study& study = small_study();
  EXPECT_EQ(study.target_names().size(), 2u);
  EXPECT_EQ(study.base_machine(), machine::base_system_name());
  // (2 targets + base) x 3 counts = 9 observations.
  EXPECT_EQ(study.observations().size(), 9u);
  EXPECT_NO_THROW((void)study.probe_set("ARL_Xeon"));
  EXPECT_THROW((void)study.probe_set("NAVO_655"), precondition_error);
  EXPECT_NO_THROW((void)study.signature("RFCTH_Standard", 32));
  EXPECT_THROW((void)study.signature("RFCTH_Standard", 31),
               precondition_error);
}

TEST(Study, BaseCannotAlsoBeTarget) {
  EXPECT_THROW(
      Study::build({machine::find(machine::base_system_name())},
                   machine::find(machine::base_system_name()),
                   {workload::find_test_case("RFCTH_Standard")}),
      precondition_error);
}

TEST(Study, EvaluateProducesOneCellPerCombination) {
  const auto predictions =
      small_study().evaluate({Metric::S1_Hpl, Metric::P6_HplStreamGups});
  // 2 metrics x 3 counts x 2 targets = 12.
  EXPECT_EQ(predictions.size(), 12u);
  for (const auto& prediction : predictions) {
    EXPECT_GT(prediction.predicted_seconds, 0.0);
    EXPECT_GT(prediction.actual_seconds, 0.0);
    EXPECT_DOUBLE_EQ(prediction.abs_error_pct(),
                     std::abs(prediction.signed_error_pct));
  }
}

TEST(Study, PredictionsAreDeterministic) {
  const double a = small_study().predict(Metric::P9_HplMapsNetDep,
                                         "RFCTH_Standard", 32, "ARL_Xeon");
  const double b = small_study().predict(Metric::P9_HplMapsNetDep,
                                         "RFCTH_Standard", 32, "ARL_Xeon");
  EXPECT_DOUBLE_EQ(a, b);
}

TEST(Study, Metric4EqualsMetric1Everywhere) {
  // The paper's Table 4 shows identical rows for #1 and #4; our ratio
  // normalization reproduces that exactly, cell by cell.
  const Study& study = msim::testing::shared_study();
  const auto predictions =
      study.evaluate({Metric::S1_Hpl, Metric::P4_Hpl});
  const auto simple = Study::slice_metric(predictions, Metric::S1_Hpl);
  const auto predictive = Study::slice_metric(predictions, Metric::P4_Hpl);
  ASSERT_EQ(simple.size(), predictive.size());
  ASSERT_EQ(simple.size(), 150u);
  for (std::size_t i = 0; i < simple.size(); ++i) {
    EXPECT_NEAR(simple[i].predicted_seconds, predictive[i].predicted_seconds,
                simple[i].predicted_seconds * 1e-6)
        << simple[i].app << "@" << simple[i].nprocs << " on "
        << simple[i].machine;
  }
}

TEST(Study, SlicesPartitionPredictions) {
  const Study& study = small_study();
  const auto predictions = study.evaluate({Metric::S2_Stream});
  const auto xeon = Study::slice_machine(predictions, "ARL_Xeon");
  const auto opteron = Study::slice_machine(predictions, "ARL_Opteron");
  EXPECT_EQ(xeon.size() + opteron.size(), predictions.size());

  const auto at32 = Study::slice_app(predictions, "RFCTH_Standard", 32);
  EXPECT_EQ(at32.size(), 2u);
  const auto all_counts = Study::slice_app(predictions, "RFCTH_Standard");
  EXPECT_EQ(all_counts.size(), predictions.size());
}

TEST(Study, SummaryMatchesHandComputation) {
  std::vector<Prediction> predictions(2);
  predictions[0].signed_error_pct = 10.0;
  predictions[1].signed_error_pct = -30.0;
  const auto summary = Study::summarize(predictions);
  EXPECT_DOUBLE_EQ(summary.mean_abs_error_pct, 20.0);
  EXPECT_NEAR(summary.stddev_abs_error_pct, 14.1421, 1e-3);
  EXPECT_EQ(summary.count, 2u);
  EXPECT_THROW((void)Study::summarize({}), precondition_error);
}

TEST(Study, BalancedRatingsAvailable) {
  const Study& study = small_study();
  const auto& equal = study.balanced_equal();
  EXPECT_NEAR(equal.weights()[0], 1.0 / 3.0, 1e-12);
  const auto& fitted = study.balanced_fitted();
  double total = 0.0;
  for (double w : fitted.weights()) total += w;
  EXPECT_NEAR(total, 1.0, 1e-9);
  // Both predict something positive.
  EXPECT_GT(study.predict(Metric::BalancedEqual, "RFCTH_Standard", 32,
                          "ARL_Xeon"),
            0.0);
  EXPECT_GT(study.predict(Metric::BalancedFitted, "RFCTH_Standard", 32,
                          "ARL_Opteron"),
            0.0);
}

}  // namespace
}  // namespace msim::metrics
