// The resident prediction service and the plumbing it stands on: the v2
// chunked frame, the artifact cache's mmap read path, the strict numeric
// parsers, the index-lock fallback, the serve wire protocol, and the
// stdio/socket front-ends. The load-bearing property throughout: a served
// reply is byte-identical to the one-shot answer — batching, threading
// and mmap must never change an output byte.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "common/binary.hpp"
#include "common/json.hpp"
#include "common/parse.hpp"
#include "machine/registry.hpp"
#include "obs/registry.hpp"
#include "pipeline/artifact_cache.hpp"
#include "pipeline/study_builder.hpp"
#include "probes/probe_io.hpp"
#include "probes/synthetic.hpp"
#include "serve/serve_protocol.hpp"
#include "serve/server.hpp"
#include "test_support.hpp"

namespace msim {
namespace {

namespace fs = std::filesystem;

fs::path scratch_dir(const std::string& tag) {
  const fs::path dir = fs::temp_directory_path() / ("msim-serve-" + tag);
  fs::remove_all(dir);
  return dir;
}

std::uint64_t counter_value(const char* name) {
  return obs::Registry::instance().counter(name).value();
}

const serve::PredictionService& shared_service() {
  // Study is move-only, so the service builds its own resident copy (one
  // build per test binary, shared across the serve tests).
  static const serve::PredictionService* const service =
      new serve::PredictionService(metrics::Study::build(), 4, 16);
  return *service;
}

/// A valid predict request over a configuration the paper study holds.
serve::ServeRequest valid_predict(std::uint64_t id) {
  serve::ServeRequest request;
  request.op = serve::ServeRequest::Op::Predict;
  request.id = id;
  request.app = "AVUS_Standard";
  request.nprocs = 64;
  request.machine = "ERDC_O3800";
  return request;
}

// --- frame v2 ----------------------------------------------------------

TEST(ChunkedFrame, RoundTripPreservesChunksAndAlignment) {
  const std::vector<std::string> chunks = {
      "scalars", std::string(1, '\0'), "", std::string(4097, 'x'),
      std::string("\x01\x02\x03", 3)};
  const std::string framed =
      frame_chunked_payload(ArtifactKind::ProbeSet, chunks);
  EXPECT_EQ(frame_version(framed), 2u);
  EXPECT_TRUE(is_framed(framed));

  const ChunkedFrameView view(ArtifactKind::ProbeSet, framed);
  ASSERT_EQ(view.chunk_count(), chunks.size());
  for (std::size_t i = 0; i < chunks.size(); ++i) {
    EXPECT_EQ(view.chunk(i), chunks[i]) << "chunk " << i;
    const auto offset = static_cast<std::size_t>(
        view.chunk(i).data() - framed.data());
    EXPECT_EQ(offset % 8, 0u) << "chunk " << i << " is not 8-byte aligned";
  }
}

TEST(ChunkedFrame, FrameVersionSniffsBothLayouts) {
  const std::string v1 = frame_payload(ArtifactKind::ProbeSet, "payload");
  const std::string v2 =
      frame_chunked_payload(ArtifactKind::ProbeSet, {"payload"});
  EXPECT_EQ(frame_version(v1), 1u);
  EXPECT_EQ(frame_version(v2), 2u);
  EXPECT_EQ(frame_version("not a frame"), 0u);
  EXPECT_EQ(frame_version("MSB"), 0u);  // shorter than magic + version
  EXPECT_EQ(frame_version(""), 0u);
}

TEST(ChunkedFrame, EveryTruncationThrows) {
  const std::string framed = frame_chunked_payload(
      ArtifactKind::ProbeSet, {"first chunk", "second chunk"});
  for (std::size_t keep = 0; keep < framed.size(); ++keep) {
    EXPECT_THROW(ChunkedFrameView(ArtifactKind::ProbeSet,
                                  std::string_view(framed).substr(0, keep)),
                 precondition_error)
        << "truncated to " << keep << " of " << framed.size() << " bytes";
  }
}

TEST(ChunkedFrame, EveryBitFlipThrowsOrIsHarmless) {
  const std::vector<std::string> chunks = {"first chunk", "second chunk"};
  const std::string framed =
      frame_chunked_payload(ArtifactKind::ProbeSet, chunks);
  for (std::size_t at = 0; at < framed.size(); ++at) {
    std::string damaged = framed;
    damaged[at] = static_cast<char>(damaged[at] ^ 0x10);
    // Header, directory and chunk bytes are checksummed, so a flip there
    // must throw. The only uncovered bytes are the zero padding between
    // chunks, which no reader ever dereferences — a flip there must leave
    // every decoded chunk byte-identical.
    try {
      const ChunkedFrameView view(ArtifactKind::ProbeSet, damaged);
      ASSERT_EQ(view.chunk_count(), chunks.size());
      for (std::size_t i = 0; i < chunks.size(); ++i) {
        EXPECT_EQ(view.chunk(i), chunks[i])
            << "bit flip at byte " << at << " changed chunk " << i;
      }
    } catch (const precondition_error&) {
      // detected — the common case
    }
  }
}

TEST(ChunkedFrame, WrongKindThrows) {
  const std::string framed =
      frame_chunked_payload(ArtifactKind::ProbeSet, {"chunk"});
  EXPECT_THROW(ChunkedFrameView(static_cast<ArtifactKind>(2), framed),
               precondition_error);
}

// --- probe set v2 encoding --------------------------------------------

TEST(ProbeV2, RoundTripIsBitwise) {
  const auto expected = probes::run_probe_suite(machine::find("ARL_Xeon"));
  const std::string framed = probes::to_binary(expected);
  EXPECT_EQ(frame_version(framed), 2u);
  const auto decoded = probes::probe_set_from_binary(framed);
  EXPECT_EQ(probes::to_text(decoded), probes::to_text(expected));
}

TEST(ProbeV2, V1MonolithicFrameStillDecodes) {
  const auto expected = probes::run_probe_suite(machine::find("ARL_Xeon"));
  const std::string v1 = probes::to_binary_v1(expected);
  EXPECT_EQ(frame_version(v1), 1u);
  const auto decoded = probes::probe_set_from_binary(v1);
  EXPECT_EQ(probes::to_text(decoded), probes::to_text(expected));
}

// --- cache mmap read path ---------------------------------------------

TEST(CacheMap, MapViewsStoredBytesAndCounts) {
  const fs::path dir = scratch_dir("map-basic");
  const pipeline::ArtifactCache cache(dir.string());
  const std::string content = probes::to_binary(
      probes::run_probe_suite(machine::find("ARL_Xeon")));
  cache.store("probe.bin", content);

  const auto before_count = counter_value("cache.map.count");
  const auto before_bytes = counter_value("cache.map.bytes");
  const auto mapped = cache.map("probe.bin");
  ASSERT_TRUE(mapped.has_value());
  EXPECT_EQ(mapped->bytes(), content);
  EXPECT_EQ(counter_value("cache.map.count"), before_count + 1);
  EXPECT_EQ(counter_value("cache.map.bytes"), before_bytes + content.size());

  // The mapped view decodes in place, identically to the loaded copy.
  const auto from_map = probes::probe_set_from_artifact(mapped->bytes());
  const auto from_load =
      probes::probe_set_from_artifact(*cache.load("probe.bin"));
  EXPECT_EQ(probes::to_text(from_map), probes::to_text(from_load));
  fs::remove_all(dir);
}

TEST(CacheMap, MapOutlivesTheCacheInstance) {
  const fs::path dir = scratch_dir("map-lifetime");
  std::optional<pipeline::MappedArtifact> mapped;
  {
    const pipeline::ArtifactCache cache(dir.string());
    cache.store("entry", "payload bytes");
    mapped = cache.map("entry");
  }
  ASSERT_TRUE(mapped.has_value());
  EXPECT_EQ(mapped->bytes(), "payload bytes");
  fs::remove_all(dir);
}

TEST(CacheMap, MissingEntryIsNullopt) {
  const fs::path dir = scratch_dir("map-missing");
  const pipeline::ArtifactCache cache(dir.string());
  EXPECT_FALSE(cache.map("nope").has_value());
  fs::remove_all(dir);
}

TEST(CacheMap, CorruptEntryIsMissAndDeleted) {
  const fs::path dir = scratch_dir("map-corrupt");
  const pipeline::ArtifactCache seed(dir.string());
  seed.store("entry", "original payload");

  // Flip one payload byte on disk; a fresh instance reads the poisoned
  // bytes against the index checksum.
  {
    std::fstream file(dir / "entry",
                      std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(file.is_open());
    char byte = 0;
    file.read(&byte, 1);
    file.seekp(0);
    byte = static_cast<char>(byte ^ 0x40);
    file.write(&byte, 1);
  }
  const pipeline::ArtifactCache cache(dir.string());
  const auto before = counter_value("cache.miss.corrupt");
  EXPECT_FALSE(cache.map("entry").has_value());
  EXPECT_EQ(counter_value("cache.miss.corrupt"), before + 1);
  EXPECT_FALSE(fs::exists(dir / "entry")) << "corrupt entry not deleted";
  fs::remove_all(dir);
}

// --- index-lock fallback ----------------------------------------------

TEST(CacheLock, UnopenableLockIsCountedAndStoreStillServes) {
  const fs::path dir = scratch_dir("lock-fail");
  fs::create_directories(dir / "index.lock");  // open(O_CREAT) now fails

  const pipeline::ArtifactCache cache(dir.string());
  const auto before = counter_value("cache.index.lock_fail");
  cache.store("entry", "payload");
  EXPECT_GT(counter_value("cache.index.lock_fail"), before)
      << "double-failed lock open was not counted";

  // The payload itself is durable and readable (in-memory index), but the
  // on-disk index publish was skipped, not written unlocked.
  EXPECT_EQ(cache.load("entry").value_or(""), "payload");
  EXPECT_FALSE(fs::exists(dir / "index.msim"))
      << "index file published without holding the lock";

  // A fresh instance (still no lock) rebuilds its view from the directory
  // scan: the artifact is never lost.
  const pipeline::ArtifactCache fresh(dir.string());
  EXPECT_EQ(fresh.load("entry").value_or(""), "payload");
  fs::remove_all(dir);
}

// --- v1 -> v2 migration on hit ----------------------------------------

TEST(CacheMigration, V1BinaryProbeArtifactUpgradesOnHit) {
  const fs::path dir = scratch_dir("migrate-v2");
  const auto machine = machine::find("ARL_Xeon");
  const auto expected = probes::run_probe_suite(machine);
  const std::string name = pipeline::probe_artifact_name(machine);
  {
    const pipeline::ArtifactCache seed(dir.string());
    seed.store(name, probes::to_binary_v1(expected));
  }

  const pipeline::ArtifactCache cache(dir.string());
  const auto migrated_before = counter_value("cache.migrate.v2");
  pipeline::StageStats stats;
  const auto sets = pipeline::run_probe_stage({machine}, 1, cache, &stats);
  EXPECT_EQ(stats.cache_hits, 1u) << "v1 binary artifact should hit";
  EXPECT_EQ(probes::to_text(sets.at(machine.name)),
            probes::to_text(expected));
  EXPECT_EQ(counter_value("cache.migrate.v2"), migrated_before + 1);

  // The hit re-stored the artifact chunked; the next hit maps v2 directly
  // and migrates nothing.
  std::ifstream in(dir / name, std::ios::binary);
  std::string upgraded((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  EXPECT_EQ(frame_version(upgraded), 2u);
  pipeline::StageStats again;
  const auto rerun = pipeline::run_probe_stage({machine}, 1, cache, &again);
  EXPECT_EQ(again.cache_hits, 1u);
  EXPECT_EQ(counter_value("cache.migrate.v2"), migrated_before + 1);
  EXPECT_EQ(probes::to_text(rerun.at(machine.name)),
            probes::to_text(expected));
  fs::remove_all(dir);
}

// --- strict numeric parsing -------------------------------------------

TEST(StrictParse, WholeStringIntegers) {
  EXPECT_EQ(parse_int("64"), 64);
  EXPECT_EQ(parse_int("-3"), -3);
  EXPECT_EQ(parse_int("0"), 0);
  EXPECT_FALSE(parse_int("").has_value());
  EXPECT_FALSE(parse_int("12abc").has_value()) << "trailing garbage";
  EXPECT_FALSE(parse_int("abc12").has_value());
  EXPECT_FALSE(parse_int(" 12").has_value()) << "leading whitespace";
  EXPECT_FALSE(parse_int("12 ").has_value());
  EXPECT_FALSE(parse_int("1e3").has_value()) << "no float grammar";
  EXPECT_FALSE(parse_int("99999999999999999999").has_value()) << "overflow";
  EXPECT_FALSE(parse_int("0x10").has_value()) << "decimal only";

  EXPECT_EQ(parse_unsigned("4294967295"), 4294967295u);
  EXPECT_FALSE(parse_unsigned("4294967296").has_value()) << "overflow";
  EXPECT_FALSE(parse_unsigned("-1").has_value());

  EXPECT_EQ(parse_u64("18446744073709551615"),
            std::numeric_limits<std::uint64_t>::max());
  EXPECT_FALSE(parse_u64("18446744073709551616").has_value());
}

TEST(StrictParse, WholeStringDoubles) {
  EXPECT_EQ(parse_double("1.5"), 1.5);
  EXPECT_EQ(parse_double("1e3"), 1000.0);
  EXPECT_EQ(parse_double("-0.25"), -0.25);
  EXPECT_FALSE(parse_double("").has_value());
  EXPECT_FALSE(parse_double("1.5s").has_value()) << "trailing garbage";
  EXPECT_FALSE(parse_double("1e999").has_value()) << "overflow";
  EXPECT_FALSE(parse_double("nan").has_value()) << "non-finite";
  EXPECT_FALSE(parse_double("inf").has_value()) << "non-finite";
}

TEST(StrictParse, EnvKnobsFallBackWhole) {
  constexpr const char* kName = "MSIM_TEST_PARSE_KNOB";
  ::unsetenv(kName);
  EXPECT_EQ(env_unsigned(kName, 7u), 7u) << "unset -> fallback";
  ::setenv(kName, "", 1);
  EXPECT_EQ(env_unsigned(kName, 7u), 7u) << "empty -> fallback";
  ::setenv(kName, "12", 1);
  EXPECT_EQ(env_unsigned(kName, 7u), 12u);
  ::setenv(kName, "12abc", 1);
  EXPECT_EQ(env_unsigned(kName, 7u), 7u)
      << "trailing garbage must fall back whole, not parse a prefix";
  ::setenv(kName, "99999999999999999999", 1);
  EXPECT_EQ(env_unsigned(kName, 7u), 7u)
      << "overflow must fall back whole, not truncate";
  ::setenv(kName, "2.5", 1);
  EXPECT_EQ(env_double(kName, 1.0), 2.5);
  ::setenv(kName, "2.5x", 1);
  EXPECT_EQ(env_double(kName, 1.0), 1.0);
  ::setenv(kName, "1024", 1);
  EXPECT_EQ(env_u64(kName, 0), 1024u);
  ::unsetenv(kName);
}

TEST(StrictParse, ByteSizesWithBinarySuffixes) {
  constexpr std::uint64_t kMax = std::numeric_limits<std::uint64_t>::max();
  EXPECT_EQ(parse_byte_size("0"), 0u);
  EXPECT_EQ(parse_byte_size("4096"), 4096u);
  EXPECT_EQ(parse_byte_size("4k"), 4096u);
  EXPECT_EQ(parse_byte_size("4K"), 4096u) << "suffix is case-insensitive";
  EXPECT_EQ(parse_byte_size("2m"), 2ull << 20);
  EXPECT_EQ(parse_byte_size("3G"), 3ull << 30);
  EXPECT_FALSE(parse_byte_size("").has_value());
  EXPECT_FALSE(parse_byte_size("-1").has_value());
  EXPECT_FALSE(parse_byte_size("4kb").has_value()) << "one-letter suffix only";
  EXPECT_FALSE(parse_byte_size("4t").has_value()) << "unknown suffix";
  EXPECT_FALSE(parse_byte_size("k").has_value()) << "no digits";
  EXPECT_EQ(parse_byte_size("99999999999999999999"), kMax) << "saturates";
  EXPECT_EQ(parse_byte_size("99999999999g"), kMax)
      << "suffix overflow saturates, never wraps to a tiny cache cap";
}

TEST(StrictParse, EnvBoolMatchesToggleContract) {
  constexpr const char* kName = "MSIM_TEST_PARSE_KNOB";
  ::unsetenv(kName);
  EXPECT_TRUE(env_bool(kName, true)) << "unset -> fallback";
  EXPECT_FALSE(env_bool(kName, false));
  ::setenv(kName, "", 1);
  EXPECT_TRUE(env_bool(kName, true)) << "empty -> fallback";
  for (const char* off : {"0", "false", "off", "no"}) {
    ::setenv(kName, off, 1);
    EXPECT_FALSE(env_bool(kName, true)) << off;
  }
  // Historical contract: anything but the explicit off spellings is on.
  for (const char* on : {"1", "true", "yes", "2", "banana"}) {
    ::setenv(kName, on, 1);
    EXPECT_TRUE(env_bool(kName, false)) << on;
  }
  ::unsetenv(kName);
}

TEST(StrictParse, EnvStringAndByteSizeKnobs) {
  constexpr const char* kName = "MSIM_TEST_PARSE_KNOB";
  ::unsetenv(kName);
  EXPECT_EQ(env_string(kName), "") << "unset -> empty";
  ::setenv(kName, "/tmp/cache dir", 1);
  EXPECT_EQ(env_string(kName), "/tmp/cache dir") << "verbatim, no parsing";
  ::setenv(kName, "8m", 1);
  EXPECT_EQ(env_byte_size(kName, 1u), 8ull << 20);
  ::setenv(kName, "8mb", 1);
  EXPECT_EQ(env_byte_size(kName, 1u), 1u) << "malformed -> fallback whole";
  ::unsetenv(kName);
  EXPECT_EQ(env_byte_size(kName, 5u), 5u);
}

// --- serve wire protocol ----------------------------------------------

TEST(ServeProtocol, RequestLinesRoundTrip) {
  serve::ServeRequest predict = valid_predict(42);
  predict.metric = "9";
  std::vector<serve::ServeRequest> requests = {predict};
  for (const auto op :
       {serve::ServeRequest::Op::Ping, serve::ServeRequest::Op::Stats,
        serve::ServeRequest::Op::Shutdown}) {
    serve::ServeRequest request;
    request.op = op;
    request.id = requests.size();
    requests.push_back(request);
  }
  for (const serve::ServeRequest& request : requests) {
    const std::string line = serve::request_line(request);
    EXPECT_EQ(line.back(), '\n');
    const auto parsed = serve::request_from_json(json::parse(line));
    EXPECT_EQ(parsed.op, request.op);
    EXPECT_EQ(parsed.id, request.id);
    EXPECT_EQ(parsed.app, request.app);
    EXPECT_EQ(parsed.nprocs, request.nprocs);
    EXPECT_EQ(parsed.machine, request.machine);
    EXPECT_EQ(parsed.metric, request.metric);
  }
}

TEST(ServeProtocol, MalformedRequestTaxonomy) {
  const std::vector<const char*> malformed = {
      "[1,2,3]",                                             // not an object
      "{\"op\":\"predict\"}",                                // no id
      "{\"op\":\"predict\",\"id\":\"7\"}",                   // id as string
      "{\"id\":1}",                                          // no op
      "{\"op\":\"bogus\",\"id\":1}",                         // unknown op
      "{\"op\":\"predict\",\"id\":1}",                       // no app
      "{\"op\":\"predict\",\"id\":1,\"app\":\"A\"}",         // no machine
      "{\"op\":\"predict\",\"id\":1,\"app\":\"A\","
      "\"machine\":\"M\"}",                                  // no nprocs
      "{\"op\":\"predict\",\"id\":1,\"app\":\"A\","
      "\"machine\":\"M\",\"nprocs\":\"64\"}",                // nprocs string
      "{\"op\":\"predict\",\"id\":1,\"app\":\"A\","
      "\"machine\":\"M\",\"nprocs\":0}",                     // non-positive
      "{\"op\":\"predict\",\"id\":1,\"app\":\"A\","
      "\"machine\":\"M\",\"nprocs\":-4}",                    // negative
      "{\"op\":\"predict\",\"id\":1,\"app\":\"A\","
      "\"machine\":\"M\",\"nprocs\":64.5}",                  // fractional
      "{\"op\":\"predict\",\"id\":1,\"app\":\"A\","
      "\"machine\":\"M\",\"nprocs\":64,\"metric\":9}",       // metric number
  };
  for (const char* text : malformed) {
    EXPECT_THROW(serve::request_from_json(json::parse(text)),
                 precondition_error)
        << text;
  }
}

TEST(ServeProtocol, MetricTokensMatchTheCli) {
  EXPECT_EQ(serve::metric_from_token("9"),
            metrics::Metric::P9_HplMapsNetDep);
  for (metrics::Metric metric : metrics::all_metrics()) {
    EXPECT_EQ(serve::metric_from_token(metrics::row_label(metric)), metric);
  }
  EXPECT_THROW((void)serve::metric_from_token("bogus"),
               precondition_error);
  EXPECT_THROW((void)serve::metric_from_token(""), precondition_error);
}

// --- serve reply decoding ----------------------------------------------

/// A fully decoded serve reply. This is the reader half of the
/// serve.reply protocol (writers live in serve_protocol.cpp and
/// server.cpp); external clients parse the same shape, so decoding every
/// key here keeps the writers honest.
struct ReplyView {
  double id = 0.0;
  std::string status;
  std::string message;
  bool has_result = false;
  std::string app;
  double nprocs = 0.0;
  std::string machine;
  double actual = 0.0;
  struct Prediction {
    std::string metric;
    double seconds = 0.0;
    double error_pct = 0.0;
  };
  std::vector<Prediction> predictions;
  bool has_stats = false;
  std::string queries;
  std::string errors;
  std::string batches;
  std::string cache_hits;
  std::string map_count;
  std::string map_bytes;
};

// msim-lint: proto(serve.reply, reader)
ReplyView decode_reply(const std::string& line) {
  const json::Value doc = json::parse(line);
  ReplyView view;
  view.id = doc.number_or("id", 0.0);
  view.status = doc.string_or("status", "");
  view.message = doc.string_or("message", "");
  if (const json::Value* result = doc.find("result");
      result != nullptr && result->is_object()) {
    view.has_result = true;
    view.app = result->string_or("app", "");
    view.nprocs = result->number_or("nprocs", 0.0);
    view.machine = result->string_or("machine", "");
    view.actual = result->number_or("actual", 0.0);
    if (const json::Value* predictions = result->find("predictions");
        predictions != nullptr && predictions->is_array()) {
      for (const json::Value& row : predictions->items()) {
        view.predictions.push_back(ReplyView::Prediction{
            .metric = row.string_or("metric", ""),
            .seconds = row.number_or("seconds", 0.0),
            .error_pct = row.number_or("error_pct", 0.0)});
      }
    }
  }
  if (const json::Value* stats = doc.find("stats");
      stats != nullptr && stats->is_object()) {
    view.has_stats = true;
    view.queries = stats->string_or("queries", "");
    view.errors = stats->string_or("errors", "");
    view.batches = stats->string_or("batches", "");
    view.cache_hits = stats->string_or("cache_hits", "");
    view.map_count = stats->string_or("map_count", "");
    view.map_bytes = stats->string_or("map_bytes", "");
  }
  return view;
}

TEST(ServeReply, DecoderConsumesEveryWrittenKey) {
  const auto& service = shared_service();

  // Predict: the result object and its prediction rows decode fully.
  const auto predict = decode_reply(
      service.answer_line(serve::request_line(valid_predict(21))).line);
  EXPECT_EQ(predict.id, 21.0);
  EXPECT_EQ(predict.status, "ok");
  ASSERT_TRUE(predict.has_result);
  EXPECT_EQ(predict.app, "AVUS_Standard");
  EXPECT_EQ(predict.nprocs, 64.0);
  EXPECT_EQ(predict.machine, "ERDC_O3800");
  EXPECT_GT(predict.actual, 0.0);
  ASSERT_EQ(predict.predictions.size(), metrics::all_metrics().size());
  for (const auto& row : predict.predictions) {
    EXPECT_NE(row.metric, "");
    EXPECT_GT(row.seconds, 0.0);
    // error_pct is signed; it just has to be finite and consistent.
    EXPECT_NEAR(row.error_pct,
                100.0 * (row.seconds - predict.actual) / predict.actual,
                1e-6);
  }

  // Stats: every counter rides as a decimal string.
  const auto stats =
      decode_reply(service.answer_line("{\"op\":\"stats\",\"id\":22}").line);
  EXPECT_EQ(stats.id, 22.0);
  EXPECT_EQ(stats.status, "ok");
  ASSERT_TRUE(stats.has_stats);
  for (const std::string* field :
       {&stats.queries, &stats.errors, &stats.batches, &stats.cache_hits,
        &stats.map_count, &stats.map_bytes}) {
    EXPECT_TRUE(parse_u64(*field).has_value()) << *field;
  }

  // Error: the message survives next to the echoed id.
  const auto error = decode_reply(
      service.answer_line(serve::request_line([] {
                            serve::ServeRequest request = valid_predict(23);
                            request.machine = "No_Such_Machine";
                            return request;
                          }()))
          .line);
  EXPECT_EQ(error.id, 23.0);
  EXPECT_EQ(error.status, "error");
  EXPECT_NE(error.message, "");
  EXPECT_FALSE(error.has_result);
  EXPECT_FALSE(error.has_stats);
}

// --- PredictionService -------------------------------------------------

TEST(ServeService, AnswersEveryOpAndCountsQueries) {
  const auto& service = shared_service();
  const auto before = counter_value("serve.queries");

  const auto ping = service.answer_line("{\"op\":\"ping\",\"id\":5}");
  EXPECT_EQ(ping.line, "{\"id\":5,\"status\":\"ok\"}\n");
  EXPECT_FALSE(ping.shutdown);

  const auto stats = service.answer_line("{\"op\":\"stats\",\"id\":6}");
  const auto parsed = json::parse(stats.line);
  EXPECT_EQ(parsed.find("status")->as_string(), "ok");
  EXPECT_TRUE(parsed.find("stats") != nullptr);

  const auto bye = service.answer_line("{\"op\":\"shutdown\",\"id\":7}");
  EXPECT_EQ(bye.line, "{\"id\":7,\"status\":\"bye\"}\n");
  EXPECT_TRUE(bye.shutdown);

  EXPECT_EQ(counter_value("serve.queries"), before + 3);
}

TEST(ServeService, ErrorsKeepTheIdAndNeverThrow) {
  const auto& service = shared_service();
  const auto errors_before = counter_value("serve.errors");

  // Unparseable line: the id is unrecoverable, so it echoes 0.
  const auto garbage = service.answer_line("not json at all");
  EXPECT_EQ(json::parse(garbage.line).find("status")->as_string(), "error");
  EXPECT_EQ(json::parse(garbage.line).find("id")->as_number(), 0.0);

  // Parseable but unknown configuration: the id survives into the error.
  const auto unknown = service.answer_line(serve::request_line([] {
    serve::ServeRequest request = valid_predict(99);
    request.machine = "No_Such_Machine";
    return request;
  }()));
  const auto parsed = json::parse(unknown.line);
  EXPECT_EQ(parsed.find("status")->as_string(), "error");
  EXPECT_EQ(parsed.find("id")->as_number(), 99.0);
  EXPECT_FALSE(parsed.find("message")->as_string().empty());
  EXPECT_EQ(counter_value("serve.errors"), errors_before + 2);
}

TEST(ServeService, PredictReplyMatchesTheSharedResultObject) {
  const auto& service = shared_service();
  const auto answer = service.answer_line(serve::request_line(
      valid_predict(11)));
  const std::string expected = serve::predict_reply(
      11, serve::predict_result_json(service.study(), "AVUS_Standard", 64,
                                     "ERDC_O3800",
                                     metrics::all_metrics()));
  EXPECT_EQ(answer.line, expected);
}

TEST(ServeService, ConcurrentBatchIsByteIdenticalToSerial) {
  const auto& service = shared_service();
  // Every study configuration plus a sprinkling of errors, several times
  // over so the batch genuinely fans out across threads.
  std::vector<std::string> lines;
  std::uint64_t id = 0;
  for (int repeat = 0; repeat < 3; ++repeat) {
    for (const auto& instance : testing::all_app_instances()) {
      for (const auto& machine : service.study().target_names()) {
        serve::ServeRequest request;
        request.op = serve::ServeRequest::Op::Predict;
        request.id = ++id;
        request.app = instance.app;
        request.nprocs = instance.nprocs;
        request.machine = machine;
        lines.push_back(serve::request_line(request));
      }
      lines.push_back("{\"op\":\"ping\",\"id\":" + std::to_string(++id) +
                      "}");
      lines.push_back("garbage line");
    }
  }
  const auto batched = service.answer_batch(lines);
  ASSERT_EQ(batched.size(), lines.size());
  for (std::size_t i = 0; i < lines.size(); ++i) {
    const auto serial = service.answer_line(lines[i]);
    EXPECT_EQ(batched[i].line, serial.line) << "request " << i;
    EXPECT_EQ(batched[i].shutdown, serial.shutdown);
  }
}

// --- stdio front-end ---------------------------------------------------

TEST(ServeStdio, AnswersUntilShutdownAndIgnoresTheRest) {
  const auto& service = shared_service();
  std::FILE* in = std::tmpfile();
  std::FILE* out = std::tmpfile();
  ASSERT_NE(in, nullptr);
  ASSERT_NE(out, nullptr);

  const std::string ping = "{\"op\":\"ping\",\"id\":1}\n";
  const std::string predict = serve::request_line(valid_predict(2));
  const std::string shutdown = "{\"op\":\"shutdown\",\"id\":3}\n";
  const std::string after = "{\"op\":\"ping\",\"id\":4}\n";
  std::fputs((ping + "\n" + predict + shutdown + after).c_str(), in);
  std::rewind(in);

  EXPECT_EQ(serve::run_stdio_server(in, out, service), 0);

  std::rewind(out);
  std::string replies;
  char buffer[4096];
  std::size_t n;
  while ((n = std::fread(buffer, 1, sizeof buffer, out)) > 0) {
    replies.append(buffer, n);
  }
  const std::string expected = service.answer_line(ping).line +
                               service.answer_line(predict).line +
                               "{\"id\":3,\"status\":\"bye\"}\n";
  EXPECT_EQ(replies, expected)
      << "blank lines skipped, shutdown acked, later lines unanswered";
  std::fclose(in);
  std::fclose(out);
}

TEST(ServeStdio, EofWithoutShutdownExitsZero) {
  const auto& service = shared_service();
  std::FILE* in = std::tmpfile();
  std::FILE* out = std::tmpfile();
  ASSERT_NE(in, nullptr);
  ASSERT_NE(out, nullptr);
  std::fputs("{\"op\":\"ping\",\"id\":1}\n", in);
  std::rewind(in);
  EXPECT_EQ(serve::run_stdio_server(in, out, service), 0);
  std::fclose(in);
  std::fclose(out);
}

// --- socket front-end --------------------------------------------------

int connect_unix(const std::string& path) {
  sockaddr_un address{};
  address.sun_family = AF_UNIX;
  std::memcpy(address.sun_path, path.c_str(), path.size() + 1);
  for (int attempt = 0; attempt < 500; ++attempt) {
    const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0) return -1;
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&address),
                  sizeof(address)) == 0) {
      return fd;
    }
    ::close(fd);
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return -1;
}

bool send_text(int fd, const std::string& text) {
  std::size_t written = 0;
  while (written < text.size()) {
    const ssize_t n =
        ::write(fd, text.data() + written, text.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    written += static_cast<std::size_t>(n);
  }
  return true;
}

std::string read_line(int fd, std::string& buffer) {
  while (true) {
    const std::size_t end = buffer.find('\n');
    if (end != std::string::npos) {
      std::string line = buffer.substr(0, end + 1);
      buffer.erase(0, end + 1);
      return line;
    }
    char chunk[4096];
    ssize_t n;
    do {
      n = ::read(fd, chunk, sizeof chunk);
    } while (n < 0 && errno == EINTR);
    if (n <= 0) return {};
    buffer.append(chunk, static_cast<std::size_t>(n));
  }
}

TEST(ServeSocket, ConcurrentClientsGetOrderedByteIdenticalReplies) {
  const auto& service = shared_service();
  const std::string path = "/tmp/msim-serve-test-" +
                           std::to_string(::getpid()) + ".sock";
  std::thread server(
      [&] { EXPECT_EQ(serve::run_socket_server(path, service), 0); });

  constexpr int kClients = 4;
  constexpr int kQueriesPerClient = 25;
  std::vector<std::thread> clients;
  std::vector<int> failures(kClients, 0);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      const int fd = connect_unix(path);
      if (fd < 0) {
        failures[c] = 1000;
        return;
      }
      std::string buffer;
      for (int q = 0; q < kQueriesPerClient; ++q) {
        serve::ServeRequest request = valid_predict(
            static_cast<std::uint64_t>(c * kQueriesPerClient + q + 1));
        if (q % 3 == 1) request.metric = "9";
        if (q % 5 == 4) request.machine = "No_Such_Machine";
        const std::string line = serve::request_line(request);
        if (!send_text(fd, line) ||
            read_line(fd, buffer) != service.answer_line(line).line) {
          ++failures[c];
        }
      }
      ::close(fd);
    });
  }
  for (std::thread& client : clients) client.join();
  for (int c = 0; c < kClients; ++c) {
    EXPECT_EQ(failures[c], 0) << "client " << c;
  }

  // One more client stops the daemon; the socket file is removed.
  const int fd = connect_unix(path);
  ASSERT_GE(fd, 0);
  std::string buffer;
  ASSERT_TRUE(send_text(fd, "{\"op\":\"shutdown\",\"id\":1}\n"));
  EXPECT_EQ(read_line(fd, buffer), "{\"id\":1,\"status\":\"bye\"}\n");
  ::close(fd);
  server.join();
  EXPECT_FALSE(fs::exists(path));
}

}  // namespace
}  // namespace msim
