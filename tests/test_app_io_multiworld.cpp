// App-model text round-trips and the multi-world analysis plumbing.
#include <gtest/gtest.h>

#include "common/check.hpp"
#include "machine/registry.hpp"
#include "metrics/multiworld.hpp"
#include "simulate/executor.hpp"
#include "workload/app_io.hpp"
#include "workload/apps.hpp"

namespace msim {
namespace {

class AppIoRoundTrip : public ::testing::TestWithParam<std::string> {};

TEST_P(AppIoRoundTrip, RoundTripsLosslessly) {
  const auto& test_case = workload::find_test_case(GetParam());
  const auto original = test_case.build(test_case.cpu_counts[1]);
  const auto parsed = workload::app_from_text(workload::to_text(original));

  EXPECT_EQ(parsed.name, original.name);
  EXPECT_EQ(parsed.nprocs, original.nprocs);
  EXPECT_EQ(parsed.timesteps, original.timesteps);
  ASSERT_EQ(parsed.phases.size(), original.phases.size());
  for (std::size_t p = 0; p < parsed.phases.size(); ++p) {
    const auto& a = parsed.phases[p];
    const auto& b = original.phases[p];
    EXPECT_EQ(a.name, b.name);
    EXPECT_DOUBLE_EQ(a.load_imbalance, b.load_imbalance);
    ASSERT_EQ(a.blocks.size(), b.blocks.size());
    for (std::size_t i = 0; i < a.blocks.size(); ++i) {
      EXPECT_EQ(a.blocks[i].name, b.blocks[i].name);
      EXPECT_EQ(a.blocks[i].iterations, b.blocks[i].iterations);
      EXPECT_EQ(a.blocks[i].working_set_bytes,
                b.blocks[i].working_set_bytes);
      EXPECT_EQ(a.blocks[i].dependency, b.blocks[i].dependency);
      EXPECT_DOUBLE_EQ(a.blocks[i].mix.unit, b.blocks[i].mix.unit);
      EXPECT_DOUBLE_EQ(a.blocks[i].page_locality,
                       b.blocks[i].page_locality);
    }
    ASSERT_EQ(a.comm.size(), b.comm.size());
  }

  // The decisive check: the detailed simulator cannot tell them apart.
  const auto& machine = machine::find("NAVO_655");
  EXPECT_DOUBLE_EQ(simulate::execute(parsed, machine).wall_seconds,
                   simulate::execute(original, machine).wall_seconds);
}

INSTANTIATE_TEST_SUITE_P(
    Ti05, AppIoRoundTrip,
    ::testing::Values("AVUS_Standard", "AVUS_Large", "HYCOM_Standard",
                      "OVERFLOW2_Standard", "RFCTH_Standard"));

TEST(AppIo, ParseErrors) {
  EXPECT_THROW((void)workload::app_from_text("name = x\n"),
               precondition_error);
  auto text =
      workload::to_text(workload::make_rfcth_standard(16));
  EXPECT_THROW((void)workload::app_from_text(text + "extra = 1\n"),
               precondition_error);
  // A broken mix must fail model validation after parsing.
  const auto pos = text.find("mix.unit = ");
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, text.find('\n', pos) - pos, "mix.unit = 0.9");
  EXPECT_THROW((void)workload::app_from_text(text), precondition_error);
}

TEST(MultiWorld, TwoWorldAnalysisHasFullStructure) {
  const auto result = metrics::run_multiworld(2, 100);
  EXPECT_EQ(result.salts, (std::vector<std::uint64_t>{100, 101}));
  EXPECT_EQ(result.distributions.size(), metrics::all_metrics().size());
  for (const auto& distribution : result.distributions) {
    EXPECT_EQ(distribution.per_world_error.size(), 2u);
    EXPECT_LE(distribution.min, distribution.mean);
    EXPECT_LE(distribution.mean, distribution.max);
    EXPECT_GT(distribution.mean, 0.0);
  }
  EXPECT_EQ(result.claims.size(), 6u);
  for (const auto& claim : result.claims) {
    EXPECT_EQ(claim.worlds, 2u);
    EXPECT_LE(claim.holds_in, 2u);
  }
}

TEST(MultiWorld, RobustClaimsHoldInProbeWorlds) {
  // The always-stable claims should hold even in a 2-world sample.
  const auto result = metrics::run_multiworld(2, 40);
  EXPECT_EQ(result.claims[0].holds_in, 2u);  // HPL worst
  EXPECT_EQ(result.claims[2].holds_in, 2u);  // traced beats simple
}

TEST(MultiWorld, RejectsEmptyInput) {
  EXPECT_THROW((void)metrics::run_multiworld(0), precondition_error);
  EXPECT_THROW((void)metrics::run_multiworld(1, 0, {}),
               precondition_error);
}

}  // namespace
}  // namespace msim
