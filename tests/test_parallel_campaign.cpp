// The threaded campaign runner must be bit-identical to the serial one —
// and must never create more concurrent workers than the scheduler's
// effective thread count, no matter how fan-outs nest.
#include <gtest/gtest.h>

#include <cstdlib>

#include "machine/registry.hpp"
#include "pipeline/scheduler.hpp"
#include "simulate/campaign.hpp"
#include "workload/apps.hpp"

namespace msim::simulate {
namespace {

TEST(ParallelCampaign, MatchesSerialExactly) {
  const std::vector<machine::MachineConfig> machines = {
      machine::find("ARL_Xeon"), machine::find("ARL_Altix"),
      machine::find("NAVO_655")};
  const std::vector<workload::TestCase> suite = {
      workload::find_test_case("RFCTH_Standard"),
      workload::find_test_case("HYCOM_Standard")};

  const ObservationSet serial = run_campaign(machines, suite);
  for (unsigned threads : {1u, 2u, 7u}) {
    const ObservationSet parallel =
        run_campaign_parallel(machines, suite, {}, threads);
    ASSERT_EQ(parallel.size(), serial.size()) << threads << " threads";
    for (const auto& observation : serial.all()) {
      EXPECT_DOUBLE_EQ(parallel.at(observation.app, observation.nprocs,
                                   observation.machine),
                       observation.seconds)
          << observation.app << "@" << observation.nprocs << " on "
          << observation.machine;
    }
  }
}

TEST(ParallelCampaign, DefaultThreadCountWorks) {
  const std::vector<machine::MachineConfig> machines = {
      machine::find("ARL_Opteron")};
  const std::vector<workload::TestCase> suite = {
      workload::find_test_case("AVUS_Standard")};
  const auto set = run_campaign_parallel(machines, suite);
  EXPECT_EQ(set.size(), 3u);
}

TEST(ParallelCampaign, HonorsMsimThreadsEndToEnd) {
  // The scheduler's worker accounting observes every pool thread, so the
  // peak across a whole campaign is the oversubscription bound: with
  // MSIM_THREADS=2 no point of the run may ever have >2 workers alive.
  const std::vector<machine::MachineConfig> machines = {
      machine::find("ARL_Xeon"), machine::find("NAVO_655")};
  const std::vector<workload::TestCase> suite = {
      workload::find_test_case("RFCTH_Standard"),
      workload::find_test_case("HYCOM_Standard")};

  ::setenv("MSIM_THREADS", "2", 1);
  pipeline::reset_peak_workers();
  const auto set = run_campaign_parallel(machines, suite);
  ::unsetenv("MSIM_THREADS");
  EXPECT_EQ(set.size(), 2u * 6u);
  EXPECT_GE(pipeline::peak_workers(), 1u);
  EXPECT_LE(pipeline::peak_workers(), 2u)
      << "campaign oversubscribed past MSIM_THREADS";

  // An explicit thread argument is bounded the same way.
  pipeline::reset_peak_workers();
  (void)run_campaign_parallel(machines, suite, {}, 3);
  EXPECT_LE(pipeline::peak_workers(), 3u);
}

TEST(ParallelCampaign, NestedCampaignRunsInline) {
  // A campaign launched from inside a scheduler worker (a study graph
  // node, an outer fan-out) must degrade to inline execution instead of
  // spawning a second pool: the old code nested hardware_concurrency
  // threads under every outer worker.
  const std::vector<machine::MachineConfig> machines = {
      machine::find("ARL_Opteron")};
  const std::vector<workload::TestCase> suite = {
      workload::find_test_case("AVUS_Standard")};

  pipeline::reset_peak_workers();
  ObservationSet inner_results[2];
  pipeline::run_indexed(2, 2, [&](std::size_t index) {
    EXPECT_TRUE(pipeline::inside_scheduler_worker());
    // Asks for 4 threads; must get the caller's thread only.
    inner_results[index] = run_campaign_parallel(machines, suite, {}, 4);
  });
  EXPECT_LE(pipeline::peak_workers(), 2u)
      << "nested campaign spawned its own pool";
  for (const auto& set : inner_results) EXPECT_EQ(set.size(), 3u);
}

}  // namespace
}  // namespace msim::simulate
