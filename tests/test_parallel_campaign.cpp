// The threaded campaign runner must be bit-identical to the serial one.
#include <gtest/gtest.h>

#include "machine/registry.hpp"
#include "simulate/campaign.hpp"
#include "workload/apps.hpp"

namespace msim::simulate {
namespace {

TEST(ParallelCampaign, MatchesSerialExactly) {
  const std::vector<machine::MachineConfig> machines = {
      machine::find("ARL_Xeon"), machine::find("ARL_Altix"),
      machine::find("NAVO_655")};
  const std::vector<workload::TestCase> suite = {
      workload::find_test_case("RFCTH_Standard"),
      workload::find_test_case("HYCOM_Standard")};

  const ObservationSet serial = run_campaign(machines, suite);
  for (unsigned threads : {1u, 2u, 7u}) {
    const ObservationSet parallel =
        run_campaign_parallel(machines, suite, {}, threads);
    ASSERT_EQ(parallel.size(), serial.size()) << threads << " threads";
    for (const auto& observation : serial.all()) {
      EXPECT_DOUBLE_EQ(parallel.at(observation.app, observation.nprocs,
                                   observation.machine),
                       observation.seconds)
          << observation.app << "@" << observation.nprocs << " on "
          << observation.machine;
    }
  }
}

TEST(ParallelCampaign, DefaultThreadCountWorks) {
  const std::vector<machine::MachineConfig> machines = {
      machine::find("ARL_Opteron")};
  const std::vector<workload::TestCase> suite = {
      workload::find_test_case("AVUS_Standard")};
  const auto set = run_campaign_parallel(machines, suite);
  EXPECT_EQ(set.size(), 3u);
}

}  // namespace
}  // namespace msim::simulate
