// TLB model, working-set tracker, and the sampled working-set estimator.
#include <gtest/gtest.h>

#include <cmath>

#include "common/check.hpp"
#include "common/units.hpp"
#include "memsim/address_stream.hpp"
#include "memsim/tlb.hpp"
#include "memsim/working_set.hpp"
#include "trace/working_set_estimator.hpp"

namespace msim {
namespace {

machine::Tlb small_tlb(std::uint32_t entries = 4,
                       std::uint32_t page = 4096) {
  return machine::Tlb{.entries = entries,
                      .page_bytes = page,
                      .miss_penalty_s = 100e-9};
}

TEST(Tlb, HitsWithinPage) {
  memsim::Tlb tlb(small_tlb());
  EXPECT_FALSE(tlb.access(0));
  EXPECT_TRUE(tlb.access(100));
  EXPECT_TRUE(tlb.access(4095));
  EXPECT_FALSE(tlb.access(4096));
  EXPECT_EQ(tlb.misses(), 2u);
  EXPECT_EQ(tlb.hits(), 2u);
}

TEST(Tlb, LruEviction) {
  memsim::Tlb tlb(small_tlb(2));
  (void)tlb.access(0 * 4096);      // A
  (void)tlb.access(1 * 4096);      // B
  EXPECT_TRUE(tlb.access(0));      // A refreshed
  (void)tlb.access(2 * 4096);      // C evicts B
  EXPECT_TRUE(tlb.access(0));      // A still present
  EXPECT_FALSE(tlb.access(4096));  // B gone
}

TEST(Tlb, ResetAndMissRate) {
  memsim::Tlb tlb(small_tlb());
  (void)tlb.access(0);
  (void)tlb.access(0);
  EXPECT_DOUBLE_EQ(tlb.miss_rate(), 0.5);
  tlb.reset();
  EXPECT_DOUBLE_EQ(tlb.miss_rate(), 0.0);
}

TEST(Tlb, ExpectedMissRateWithinCoverageIsZero) {
  const auto config = small_tlb(16, 4096);  // 64 KiB coverage
  EXPECT_DOUBLE_EQ(
      memsim::Tlb::expected_miss_rate(config, 32 * KiB, 8), 0.0);
  EXPECT_DOUBLE_EQ(
      memsim::Tlb::expected_miss_rate(config, 32 * KiB, 0), 0.0);
}

TEST(Tlb, ExpectedMissRateStrided) {
  const auto config = small_tlb(16, 4096);
  // Beyond coverage, a stride-8 walk misses once per 512 references.
  EXPECT_NEAR(memsim::Tlb::expected_miss_rate(config, 1 * MiB, 8),
              1.0 / 512.0, 1e-12);
  // A page-sized stride misses every reference.
  EXPECT_NEAR(memsim::Tlb::expected_miss_rate(config, 1 * MiB, 4096), 1.0,
              1e-12);
}

TEST(Tlb, ExpectedMissRateRandom) {
  const auto config = small_tlb(16, 4096);  // 64 KiB coverage
  EXPECT_NEAR(memsim::Tlb::expected_miss_rate(config, 128 * KiB, 0), 0.5,
              1e-12);
  EXPECT_NEAR(memsim::Tlb::expected_miss_rate(config, 64 * MiB, 0),
              1.0 - 64.0 * KiB / (64.0 * MiB), 1e-9);
}

TEST(Tlb, SimulationAgreesWithAnalyticRandom) {
  const auto config = small_tlb(16, 4096);
  memsim::Tlb tlb(config);
  memsim::StreamSpec spec;
  spec.working_set_bytes = 256 * KiB;  // coverage is 64 KiB -> 75% misses
  spec.components = {{.stride_bytes = 0, .weight = 1.0}};
  memsim::AddressGenerator generator(spec, 13);
  for (int i = 0; i < 50000; ++i) (void)tlb.access(generator.next());
  EXPECT_NEAR(tlb.miss_rate(),
              memsim::Tlb::expected_miss_rate(config, 256 * KiB, 0), 0.02);
}

TEST(WorkingSetTracker, CountsUniqueLines) {
  memsim::WorkingSetTracker tracker(64);
  tracker.touch(0);
  tracker.touch(63);   // same line
  tracker.touch(64);   // second line
  tracker.touch(640);  // third line
  EXPECT_EQ(tracker.unique_lines(), 3u);
  EXPECT_EQ(tracker.bytes(), 3u * 64);
  tracker.reset();
  EXPECT_EQ(tracker.unique_lines(), 0u);
}

TEST(WorkingSetTracker, RejectsNonPowerOfTwoGranularity) {
  EXPECT_THROW(memsim::WorkingSetTracker(100), precondition_error);
}

TEST(InvertUniqueCount, ExactWhenSaturated) {
  // After very many draws over L slots, unique -> L.
  EXPECT_NEAR(trace::invert_unique_count(1000, 1u << 20), 1000.0, 1.0);
}

TEST(InvertUniqueCount, CapWhenNoCollisions) {
  EXPECT_DOUBLE_EQ(trace::invert_unique_count(500, 500, 1e12), 1e12);
  EXPECT_DOUBLE_EQ(trace::invert_unique_count(0, 0), 0.0);
}

TEST(InvertUniqueCount, RejectsImpossibleInput) {
  EXPECT_THROW((void)trace::invert_unique_count(10, 5), precondition_error);
}

/// Property: the estimator recovers the true working set of random streams
/// across a wide size range using a bounded sample.
class RandomExtentProperty : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(RandomExtentProperty, EstimatesRandomStreamExtent) {
  const std::uint64_t ws = GetParam();
  memsim::StreamSpec spec;
  spec.working_set_bytes = ws;
  spec.element_bytes = 8;
  spec.components = {{.stride_bytes = 0, .weight = 1.0}};
  memsim::AddressGenerator generator(spec, 31);
  trace::WorkingSetEstimator estimator(8);
  for (int i = 0; i < 1 << 18; ++i) {
    const auto ref = generator.next_tagged();
    estimator.observe(ref.stream_id, ref.address);
  }
  const auto estimate = estimator.estimate();
  EXPECT_FALSE(estimate.is_lower_bound);
  EXPECT_GT(estimate.bytes, ws / 2);
  EXPECT_LT(estimate.bytes, ws * 2);
}

INSTANTIATE_TEST_SUITE_P(Sizes, RandomExtentProperty,
                         ::testing::Values(64 * KiB, 512 * KiB, 4 * MiB,
                                           32 * MiB));

TEST(WorkingSetEstimator, StridedWrapGivesExactExtent) {
  memsim::StreamSpec spec;
  spec.working_set_bytes = 64 * KiB;
  spec.element_bytes = 8;
  spec.components = {{.stride_bytes = 8, .weight = 1.0}};
  memsim::AddressGenerator generator(spec, 37);
  trace::WorkingSetEstimator estimator(8);
  // Two full sweeps guarantee at least one observed wrap.
  for (std::uint64_t i = 0; i < 2 * spec.working_set_bytes / 8; ++i) {
    const auto ref = generator.next_tagged();
    estimator.observe(ref.stream_id, ref.address);
  }
  const auto estimate = estimator.estimate();
  EXPECT_FALSE(estimate.is_lower_bound);
  EXPECT_EQ(estimate.bytes, spec.working_set_bytes);  // wrap extent is exact
}

TEST(WorkingSetEstimator, UnwrappedStrideIsLowerBound) {
  memsim::StreamSpec spec;
  spec.working_set_bytes = 1 * GiB;  // sample cannot cover this
  spec.element_bytes = 8;
  spec.components = {{.stride_bytes = 8, .weight = 1.0}};
  memsim::AddressGenerator generator(spec, 41);
  trace::WorkingSetEstimator estimator(8);
  const std::uint64_t samples = 1 << 14;
  for (std::uint64_t i = 0; i < samples; ++i) {
    const auto ref = generator.next_tagged();
    estimator.observe(ref.stream_id, ref.address);
  }
  const auto estimate = estimator.estimate();
  EXPECT_TRUE(estimate.is_lower_bound);
  EXPECT_NEAR(static_cast<double>(estimate.bytes),
              static_cast<double>(samples * 8), samples * 8 * 0.01);
}

TEST(WorkingSetEstimator, MixedStreamPrefersBoundedEstimate) {
  memsim::StreamSpec spec;
  spec.working_set_bytes = 8 * MiB;
  spec.element_bytes = 8;
  spec.components = {{.stride_bytes = 8, .weight = 0.7},
                     {.stride_bytes = 0, .weight = 0.3}};
  memsim::AddressGenerator generator(spec, 43);
  trace::WorkingSetEstimator estimator(8);
  for (int i = 0; i < 1 << 18; ++i) {
    const auto ref = generator.next_tagged();
    estimator.observe(ref.stream_id, ref.address);
  }
  // The unit-stride component cannot wrap in this sample, but the random
  // component saturates enough to bound the extent.
  const auto estimate = estimator.estimate();
  EXPECT_FALSE(estimate.is_lower_bound);
  EXPECT_GT(estimate.bytes, 4 * MiB);
  EXPECT_LT(estimate.bytes, 16 * MiB);
}

}  // namespace
}  // namespace msim
