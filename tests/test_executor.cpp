// Ground-truth executor: determinism, effect toggles, contention and
// conflict modeling, and the observation campaign.
#include <gtest/gtest.h>

#include "common/check.hpp"
#include "machine/registry.hpp"
#include "simulate/campaign.hpp"
#include "simulate/executor.hpp"
#include "test_support.hpp"
#include "workload/apps.hpp"

namespace msim::simulate {
namespace {

const workload::AppModel& test_app() {
  static const workload::AppModel app = workload::make_hycom_standard(96);
  return app;
}

TEST(Executor, ProducesPositiveDeterministicTimes) {
  const auto& machine = machine::find("NAVO_655");
  const RunResult a = execute(test_app(), machine);
  const RunResult b = execute(test_app(), machine);
  EXPECT_GT(a.wall_seconds, 0.0);
  EXPECT_DOUBLE_EQ(a.wall_seconds, b.wall_seconds);
  EXPECT_EQ(a.app, "HYCOM_Standard");
  EXPECT_EQ(a.machine, "NAVO_655");
  EXPECT_EQ(a.nprocs, 96);
}

TEST(Executor, WallIsComputePlusComm) {
  const RunResult run = execute(test_app(), machine::find("ASC_SC45"));
  EXPECT_NEAR(run.wall_seconds, run.compute_seconds + run.comm_seconds,
              1e-9);
  EXPECT_GT(run.comm_fraction(), 0.0);
  EXPECT_LT(run.comm_fraction(), 0.5);
}

TEST(Executor, PerTimestepBreakdownPresent) {
  const RunResult run = execute(test_app(), machine::find("ARL_Xeon"));
  ASSERT_EQ(run.per_timestep.size(), test_app().phases.size());
  for (std::size_t i = 0; i < run.per_timestep.size(); ++i) {
    EXPECT_EQ(run.per_timestep[i].phase, test_app().phases[i].name);
    EXPECT_EQ(run.per_timestep[i].blocks.size(),
              test_app().phases[i].blocks.size());
    for (const auto& block : run.per_timestep[i].blocks) {
      EXPECT_GE(block.total_seconds,
                std::max(block.flop_seconds,
                         block.memory_seconds + block.tlb_seconds) - 1e-12);
    }
  }
}

TEST(Executor, TlbToggleOnlySlowsDown) {
  const auto& machine = machine::find("ARL_Xeon");  // small TLB
  ExecutorOptions with, without;
  without.apply_tlb = false;
  EXPECT_GT(execute(test_app(), machine, with).wall_seconds,
            execute(test_app(), machine, without).wall_seconds);
}

TEST(Executor, ContentionToggleOnlySlowsDown) {
  const auto& machine = machine::find("MHPCC_690_1.3");  // 32-way nodes
  ExecutorOptions with, without;
  without.apply_contention = false;
  EXPECT_GT(execute(test_app(), machine, with).wall_seconds,
            execute(test_app(), machine, without).wall_seconds);
}

TEST(Executor, SystemEfficiencySlowsDown) {
  const auto& machine = machine::find("ARL_Xeon");
  ExecutorOptions with, without;
  with.apply_noise = without.apply_noise = false;
  without.apply_system_efficiency = false;
  const double ratio = execute(test_app(), machine, with).wall_seconds /
                       execute(test_app(), machine, without).wall_seconds;
  EXPECT_NEAR(ratio, 1.0 / machine.system_efficiency, 1e-9);
}

TEST(Executor, NoiseIsBounded) {
  const auto& machine = machine::find("ARL_Opteron");
  ExecutorOptions noisy, quiet;
  quiet.apply_noise = false;
  const double with_noise = execute(test_app(), machine, noisy).wall_seconds;
  const double baseline = execute(test_app(), machine, quiet).wall_seconds;
  const double bound = (1.0 + noisy.noise_amplitude) *
                       (1.0 + noisy.affinity_amplitude);
  EXPECT_LT(with_noise / baseline, bound + 1e-9);
  EXPECT_GT(with_noise / baseline, 1.0 / bound - 1e-9);
}

TEST(Executor, DifferentSaltsGiveDifferentWorlds) {
  const auto& machine = machine::find("ARL_Opteron");
  ExecutorOptions a, b;
  b.noise_salt = a.noise_salt + 1;
  EXPECT_NE(execute(test_app(), machine, a).wall_seconds,
            execute(test_app(), machine, b).wall_seconds);
}

TEST(Contention, DividesMemoryBandwidthOnly) {
  const auto& machine = machine::find("MHPCC_P3");
  const auto contended = apply_contention(machine);
  EXPECT_LT(contended.memory.unit_stride_bw, machine.memory.unit_stride_bw);
  EXPECT_LT(contended.memory.random_bw, machine.memory.random_bw);
  EXPECT_DOUBLE_EQ(contended.caches[0].unit_stride_bw,
                   machine.caches[0].unit_stride_bw);
}

TEST(Conflicts, SusceptibilityReflectsAssociativity) {
  // SC45 has a direct-mapped L2: highest susceptibility of the set.
  const double sc45 = conflict_susceptibility(machine::find("ASC_SC45"));
  const double p655 = conflict_susceptibility(machine::find("NAVO_655"));
  EXPECT_GT(sc45, p655);
  EXPECT_LE(sc45, 1.0);
}

TEST(Conflicts, PureStreamsAreNotInflated) {
  workload::BasicBlock block{
      .name = "pure",
      .flops_per_iteration = 1,
      .refs_per_iteration = 1,
      .element_bytes = 8,
      .iterations = 1,
      .mix = {.unit = 1.0, .short_ = 0.0, .random = 0.0,
              .short_stride_elements = 2},
      .working_set_bytes = 1 << 20,
      .ilp_efficiency = 0.5};
  EXPECT_EQ(conflict_inflated_working_set(block,
                                          machine::find("ASC_SC45"), 1.0),
            block.working_set_bytes);
}

TEST(Conflicts, MixedStreamsInflate) {
  workload::BasicBlock block{
      .name = "mixed",
      .flops_per_iteration = 1,
      .refs_per_iteration = 1,
      .element_bytes = 8,
      .iterations = 1,
      .mix = {.unit = 0.4, .short_ = 0.3, .random = 0.3,
              .short_stride_elements = 4},
      .working_set_bytes = 1 << 20,
      .ilp_efficiency = 0.5};
  const auto inflated = conflict_inflated_working_set(
      block, machine::find("ASC_SC45"), 1.0);
  EXPECT_GT(inflated, block.working_set_bytes);
  EXPECT_LT(inflated, block.working_set_bytes * 2);
}

TEST(Campaign, BuildsAllObservations) {
  // 2 machines x (1 test case x 3 counts) = 6 observations.
  std::vector<machine::MachineConfig> machines = {
      machine::find("ARL_Xeon"), machine::find("ARL_Opteron")};
  std::vector<workload::TestCase> suite = {
      workload::find_test_case("RFCTH_Standard")};
  const ObservationSet set = run_campaign(machines, suite);
  EXPECT_EQ(set.size(), 6u);
  EXPECT_GT(set.at("RFCTH_Standard", 16, "ARL_Xeon"), 0.0);
  EXPECT_FALSE(set.find("RFCTH_Standard", 99, "ARL_Xeon").has_value());
  EXPECT_THROW((void)set.at("RFCTH_Standard", 99, "ARL_Xeon"),
               precondition_error);
}

TEST(Campaign, RejectsDuplicates) {
  ObservationSet set;
  set.add({"A", 1, "M", 10.0});
  EXPECT_THROW(set.add({"A", 1, "M", 20.0}), precondition_error);
}

TEST(Campaign, PaperCampaignHas165Observations) {
  // 5 apps x 3 counts x (10 targets + base) = 165; reuse the shared study.
  EXPECT_EQ(msim::testing::shared_study().observations().size(), 165u);
}

}  // namespace
}  // namespace msim::simulate
