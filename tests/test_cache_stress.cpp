// Concurrency stress for artifact cache v2: many threads across several
// ArtifactCache instances (stand-ins for separate processes — each
// instance has private in-memory state and talks to the others only
// through the directory, the flock'd index, and atomic renames) churn
// load/store/evict on ONE directory under a tight size cap.
//
// The contract under fire: a successful load always returns exactly the
// content stored under that name (no torn or mixed reads), eviction never
// corrupts survivors, and after the dust settles the index can be made
// consistent with the directory. Iteration counts are modest so the suite
// stays fast under TSan/ASan, where it earns its keep.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "machine/registry.hpp"
#include "pipeline/artifact_cache.hpp"
#include "pipeline/study_builder.hpp"
#include "probes/probe_io.hpp"
#include "probes/synthetic.hpp"

namespace msim::pipeline {
namespace {

namespace fs = std::filesystem;

fs::path scratch_cache(const std::string& tag) {
  const fs::path dir = fs::temp_directory_path() / ("msim-test-" + tag);
  fs::remove_all(dir);
  return dir;
}

/// Deterministic content for a pool entry: a few KB, unique per name, so
/// any torn or cross-wired read is detectable by plain comparison.
std::string expected_content(std::size_t id) {
  std::string content = "entry " + std::to_string(id) + "\n";
  std::mt19937_64 rng(0x5eedULL + id);
  content.reserve(2048 + (id % 7) * 512);
  while (content.size() < 2048 + (id % 7) * 512) {
    content += std::to_string(rng());
    content += '\n';
  }
  return content;
}

TEST(CacheStress, ChurnUnderTightCapNeverReturnsWrongData) {
  const fs::path dir = scratch_cache("stress-churn");

  constexpr std::size_t kPool = 32;     // distinct entry names
  constexpr std::size_t kInstances = 4; // "processes" sharing the dir
  constexpr unsigned kThreadsPer = 2;   // threads per instance
  constexpr int kOpsPerThread = 60;

  std::vector<std::string> names;
  std::vector<std::string> contents;
  std::uint64_t pool_bytes = 0;
  for (std::size_t i = 0; i < kPool; ++i) {
    names.push_back("stress-" + std::to_string(i) + ".txt");
    contents.push_back(expected_content(i));
    pool_bytes += contents.back().size();
  }
  // Cap well below the working set so eviction churns constantly.
  const std::uint64_t cap = pool_bytes / 4;

  std::vector<ArtifactCache> instances;
  for (std::size_t i = 0; i < kInstances; ++i) {
    instances.emplace_back(dir.string(), cap);
  }

  std::atomic<int> wrong_reads{0};
  std::atomic<std::uint64_t> loads_hit{0};
  std::atomic<std::uint64_t> stores{0};

  auto worker = [&](std::size_t instance, unsigned seed) {
    std::mt19937 rng(seed);
    std::uniform_int_distribution<std::size_t> pick(0, kPool - 1);
    std::uniform_int_distribution<int> coin(0, 99);
    const ArtifactCache& cache = instances[instance];
    for (int op = 0; op < kOpsPerThread; ++op) {
      const std::size_t id = pick(rng);
      if (coin(rng) < 55) {
        if (const auto loaded = cache.load(names[id])) {
          loads_hit.fetch_add(1, std::memory_order_relaxed);
          if (*loaded != contents[id]) {
            wrong_reads.fetch_add(1, std::memory_order_relaxed);
          }
        }
      } else {
        cache.store(names[id], contents[id]);
        stores.fetch_add(1, std::memory_order_relaxed);
      }
    }
  };

  std::vector<std::thread> threads;
  unsigned seed = 1;
  for (std::size_t i = 0; i < kInstances; ++i) {
    for (unsigned t = 0; t < kThreadsPer; ++t) {
      threads.emplace_back(worker, i, seed++);
    }
  }
  for (auto& thread : threads) thread.join();

  // The one inviolable invariant: no load ever saw wrong bytes.
  EXPECT_EQ(wrong_reads.load(), 0);
  // Sanity: the mix actually exercised both paths.
  EXPECT_GT(stores.load(), 0u);
  EXPECT_GT(loads_hit.load(), 0u);

  // Quiesced: a fresh instance rebuilds the index from the directory and
  // the result is internally consistent; every surviving entry still
  // carries its exact original content.
  const ArtifactCache fresh(dir.string(), cap);
  fresh.rebuild_index();
  EXPECT_TRUE(fresh.index_consistent());
  std::size_t survivors = 0;
  for (std::size_t i = 0; i < kPool; ++i) {
    if (const auto loaded = fresh.load(names[i])) {
      ++survivors;
      EXPECT_EQ(*loaded, contents[i]) << names[i];
    }
  }
  EXPECT_GT(survivors, 0u);
  fs::remove_all(dir);
}

TEST(CacheStress, TwoBenchesRacingOnSharedDirStayCorrect) {
  // The bench hazard the scratch-dir default guards against, reproduced
  // deliberately: two "benches" (threads with their own ArtifactCache
  // instances) run the probe stage concurrently against ONE shared
  // directory under a cap small enough to force mutual eviction. Both
  // must still produce probe sets identical to an uncached reference.
  const fs::path dir = scratch_cache("stress-bench-race");

  std::vector<machine::MachineConfig> machines;
  for (const auto& name :
       {std::string("ARL_Xeon"), std::string("ARL_Opteron"),
        machine::base_system_name()}) {
    machines.push_back(machine::find(name));
  }

  std::map<std::string, probes::ProbeSet> reference;
  std::uint64_t working_set = 0;
  for (const auto& machine : machines) {
    auto set = probes::run_probe_suite(machine);
    working_set += probes::to_binary(set).size();
    reference.emplace(machine.name, std::move(set));
  }
  const std::uint64_t cap = working_set / 2;  // below the working set

  std::vector<std::map<std::string, probes::ProbeSet>> results(2);
  std::vector<std::thread> benches;
  for (int b = 0; b < 2; ++b) {
    benches.emplace_back([&, b] {
      const ArtifactCache cache(dir.string(), cap);
      for (int round = 0; round < 3; ++round) {
        results[b] = run_probe_stage(machines, 2, cache, nullptr);
      }
    });
  }
  for (auto& bench : benches) bench.join();

  for (const auto& result : results) {
    ASSERT_EQ(result.size(), machines.size());
    for (const auto& [name, set] : result) {
      // Text form is a faithful canonical rendering; equality there means
      // the racing caches never served one machine's probes for another
      // or a torn artifact.
      EXPECT_EQ(probes::to_text(set), probes::to_text(reference.at(name)))
          << name;
    }
  }

  const ArtifactCache fresh(dir.string(), cap);
  fresh.rebuild_index();
  EXPECT_TRUE(fresh.index_consistent());
  fs::remove_all(dir);
}

}  // namespace
}  // namespace msim::pipeline
