// Concurrency stress for artifact cache v2: many threads across several
// ArtifactCache instances (stand-ins for separate processes — each
// instance has private in-memory state and talks to the others only
// through the directory, the flock'd index, and atomic renames) churn
// load/store/evict on ONE directory under a tight size cap.
//
// The contract under fire: a successful load always returns exactly the
// content stored under that name (no torn or mixed reads), eviction never
// corrupts survivors, and after the dust settles the index can be made
// consistent with the directory. Iteration counts are modest so the suite
// stays fast under TSan/ASan, where it earns its keep.
#include <gtest/gtest.h>

#include <spawn.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <random>
#include <string>
#include <thread>
#include <vector>

extern char** environ;

#include "machine/registry.hpp"
#include "pipeline/artifact_cache.hpp"
#include "pipeline/study_builder.hpp"
#include "probes/probe_io.hpp"
#include "probes/synthetic.hpp"

namespace msim::pipeline {
namespace {

namespace fs = std::filesystem;

fs::path scratch_cache(const std::string& tag) {
  const fs::path dir = fs::temp_directory_path() / ("msim-test-" + tag);
  fs::remove_all(dir);
  return dir;
}

/// Deterministic content for a pool entry: a few KB, unique per name, so
/// any torn or cross-wired read is detectable by plain comparison.
std::string expected_content(std::size_t id) {
  std::string content = "entry " + std::to_string(id) + "\n";
  std::mt19937_64 rng(0x5eedULL + id);
  content.reserve(2048 + (id % 7) * 512);
  while (content.size() < 2048 + (id % 7) * 512) {
    content += std::to_string(rng());
    content += '\n';
  }
  return content;
}

TEST(CacheStress, ChurnUnderTightCapNeverReturnsWrongData) {
  const fs::path dir = scratch_cache("stress-churn");

  constexpr std::size_t kPool = 32;     // distinct entry names
  constexpr std::size_t kInstances = 4; // "processes" sharing the dir
  constexpr unsigned kThreadsPer = 2;   // threads per instance
  constexpr int kOpsPerThread = 60;

  std::vector<std::string> names;
  std::vector<std::string> contents;
  std::uint64_t pool_bytes = 0;
  for (std::size_t i = 0; i < kPool; ++i) {
    names.push_back("stress-" + std::to_string(i) + ".txt");
    contents.push_back(expected_content(i));
    pool_bytes += contents.back().size();
  }
  // Cap well below the working set so eviction churns constantly.
  const std::uint64_t cap = pool_bytes / 4;

  std::vector<ArtifactCache> instances;
  for (std::size_t i = 0; i < kInstances; ++i) {
    instances.emplace_back(dir.string(), cap);
  }

  std::atomic<int> wrong_reads{0};
  std::atomic<std::uint64_t> loads_hit{0};
  std::atomic<std::uint64_t> stores{0};

  auto worker = [&](std::size_t instance, unsigned seed) {
    std::mt19937 rng(seed);
    std::uniform_int_distribution<std::size_t> pick(0, kPool - 1);
    std::uniform_int_distribution<int> coin(0, 99);
    const ArtifactCache& cache = instances[instance];
    for (int op = 0; op < kOpsPerThread; ++op) {
      const std::size_t id = pick(rng);
      if (coin(rng) < 55) {
        if (const auto loaded = cache.load(names[id])) {
          loads_hit.fetch_add(1, std::memory_order_relaxed);
          if (*loaded != contents[id]) {
            wrong_reads.fetch_add(1, std::memory_order_relaxed);
          }
        }
      } else {
        cache.store(names[id], contents[id]);
        stores.fetch_add(1, std::memory_order_relaxed);
      }
    }
  };

  std::vector<std::thread> threads;
  unsigned seed = 1;
  for (std::size_t i = 0; i < kInstances; ++i) {
    for (unsigned t = 0; t < kThreadsPer; ++t) {
      threads.emplace_back(worker, i, seed++);
    }
  }
  for (auto& thread : threads) thread.join();

  // The one inviolable invariant: no load ever saw wrong bytes.
  EXPECT_EQ(wrong_reads.load(), 0);
  // Sanity: the mix actually exercised both paths.
  EXPECT_GT(stores.load(), 0u);
  EXPECT_GT(loads_hit.load(), 0u);

  // Quiesced: a fresh instance rebuilds the index from the directory and
  // the result is internally consistent; every surviving entry still
  // carries its exact original content.
  const ArtifactCache fresh(dir.string(), cap);
  fresh.rebuild_index();
  EXPECT_TRUE(fresh.index_consistent());
  std::size_t survivors = 0;
  for (std::size_t i = 0; i < kPool; ++i) {
    if (const auto loaded = fresh.load(names[i])) {
      ++survivors;
      EXPECT_EQ(*loaded, contents[i]) << names[i];
    }
  }
  EXPECT_GT(survivors, 0u);
  fs::remove_all(dir);
}

/// Churn body shared by the in-process threads test and the spawned
/// child processes: one ArtifactCache instance, `threads` threads mixing
/// loads and stores over the standard entry pool. Returns the number of
/// loads that saw wrong bytes (the inviolable zero).
int churn_instance(const std::string& dir, std::uint64_t cap,
                   unsigned threads, unsigned seed_base, int ops) {
  std::vector<std::string> names;
  std::vector<std::string> contents;
  for (std::size_t i = 0; i < 32; ++i) {
    names.push_back("stress-" + std::to_string(i) + ".txt");
    contents.push_back(expected_content(i));
  }
  const ArtifactCache cache(dir, cap);
  std::atomic<int> wrong_reads{0};
  auto worker = [&](unsigned seed) {
    std::mt19937 rng(seed);
    std::uniform_int_distribution<std::size_t> pick(0, names.size() - 1);
    std::uniform_int_distribution<int> coin(0, 99);
    for (int op = 0; op < ops; ++op) {
      const std::size_t id = pick(rng);
      if (coin(rng) < 55) {
        if (const auto loaded = cache.load(names[id])) {
          if (*loaded != contents[id]) {
            wrong_reads.fetch_add(1, std::memory_order_relaxed);
          }
        }
      } else {
        cache.store(names[id], contents[id]);
      }
    }
  };
  std::vector<std::thread> pool;
  for (unsigned t = 0; t < threads; ++t) {
    pool.emplace_back(worker, seed_base + t);
  }
  for (auto& thread : pool) thread.join();
  return wrong_reads.load();
}

/// Child-process half of the multi-process churn test. The suite name is
/// deliberately NOT "CacheStress": gtest filters treat '.' literally, so
/// CI's `CacheStress.*` filters never run this helper directly — it only
/// executes when the parent test spawns this binary with an explicit
/// filter and the MSIM_CHURN_* env set.
TEST(CacheStressChild, Churn) {
  const char* dir = std::getenv("MSIM_CHURN_DIR");
  const char* cap = std::getenv("MSIM_CHURN_CAP");
  const char* seed = std::getenv("MSIM_CHURN_SEED");
  if (dir == nullptr || cap == nullptr || seed == nullptr) {
    GTEST_SKIP() << "child helper; run via MultiProcessChurn";
  }
  EXPECT_EQ(churn_instance(dir, std::strtoull(cap, nullptr, 10), 2,
                           static_cast<unsigned>(std::atoi(seed)), 80),
            0);
}

TEST(CacheStress, MultiProcessChurnSelfHealsSharedIndex) {
  // True cross-process churn — the exact regime distributed workers
  // create: several processes (not instances) hammer one MSIM_CACHE_DIR
  // under a tight MSIM_CACHE_MAX_BYTES, coordinating only through flock
  // and atomic renames.
  const fs::path dir = scratch_cache("stress-multiproc");

  std::uint64_t pool_bytes = 0;
  std::vector<std::string> names;
  std::vector<std::string> contents;
  for (std::size_t i = 0; i < 32; ++i) {
    names.push_back("stress-" + std::to_string(i) + ".txt");
    contents.push_back(expected_content(i));
    pool_bytes += contents.back().size();
  }
  const std::uint64_t cap = pool_bytes / 4;

  char exe[4096];
  const ssize_t len = ::readlink("/proc/self/exe", exe, sizeof exe - 1);
  ASSERT_GT(len, 0);
  exe[len] = '\0';

  ::setenv("MSIM_CHURN_DIR", dir.string().c_str(), 1);
  ::setenv("MSIM_CHURN_CAP", std::to_string(cap).c_str(), 1);

  constexpr int kChildren = 4;
  std::vector<pid_t> children;
  std::string filter = "--gtest_filter=CacheStressChild.Churn";
  std::string brief = "--gtest_brief=1";
  char* argv[] = {exe, filter.data(), brief.data(), nullptr};
  for (int c = 0; c < kChildren; ++c) {
    ::setenv("MSIM_CHURN_SEED", std::to_string(100 * (c + 1)).c_str(), 1);
    pid_t pid = -1;
    ASSERT_EQ(::posix_spawn(&pid, exe, nullptr, nullptr, argv, environ), 0);
    children.push_back(pid);
  }
  ::unsetenv("MSIM_CHURN_DIR");
  ::unsetenv("MSIM_CHURN_CAP");
  ::unsetenv("MSIM_CHURN_SEED");

  for (pid_t pid : children) {
    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    // A child that saw a wrong read (or crashed) fails its own gtest run
    // and exits non-zero.
    EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0)
        << "child exit status " << status;
  }

  // Quiesced: even after deleting the index outright (the worst crash any
  // process could leave behind), a fresh instance re-adopts the payload
  // files, and an explicit rebuild lands consistent — with every survivor
  // still byte-exact.
  fs::remove(dir / "index.msim");
  const ArtifactCache fresh(dir.string(), cap);
  fresh.rebuild_index();
  EXPECT_TRUE(fresh.index_consistent());
  std::size_t survivors = 0;
  for (std::size_t i = 0; i < names.size(); ++i) {
    if (const auto loaded = fresh.load(names[i])) {
      ++survivors;
      EXPECT_EQ(*loaded, contents[i]) << names[i];
    }
  }
  EXPECT_GT(survivors, 0u);
  fs::remove_all(dir);
}

TEST(CacheStress, TwoBenchesRacingOnSharedDirStayCorrect) {
  // The bench hazard the scratch-dir default guards against, reproduced
  // deliberately: two "benches" (threads with their own ArtifactCache
  // instances) run the probe stage concurrently against ONE shared
  // directory under a cap small enough to force mutual eviction. Both
  // must still produce probe sets identical to an uncached reference.
  const fs::path dir = scratch_cache("stress-bench-race");

  std::vector<machine::MachineConfig> machines;
  for (const auto& name :
       {std::string("ARL_Xeon"), std::string("ARL_Opteron"),
        machine::base_system_name()}) {
    machines.push_back(machine::find(name));
  }

  std::map<std::string, probes::ProbeSet> reference;
  std::uint64_t working_set = 0;
  for (const auto& machine : machines) {
    auto set = probes::run_probe_suite(machine);
    working_set += probes::to_binary(set).size();
    reference.emplace(machine.name, std::move(set));
  }
  const std::uint64_t cap = working_set / 2;  // below the working set

  std::vector<std::map<std::string, probes::ProbeSet>> results(2);
  std::vector<std::thread> benches;
  for (int b = 0; b < 2; ++b) {
    benches.emplace_back([&, b] {
      const ArtifactCache cache(dir.string(), cap);
      for (int round = 0; round < 3; ++round) {
        results[b] = run_probe_stage(machines, 2, cache, nullptr);
      }
    });
  }
  for (auto& bench : benches) bench.join();

  for (const auto& result : results) {
    ASSERT_EQ(result.size(), machines.size());
    for (const auto& [name, set] : result) {
      // Text form is a faithful canonical rendering; equality there means
      // the racing caches never served one machine's probes for another
      // or a torn artifact.
      EXPECT_EQ(probes::to_text(set), probes::to_text(reference.at(name)))
          << name;
    }
  }

  const ArtifactCache fresh(dir.string(), cap);
  fresh.rebuild_index();
  EXPECT_TRUE(fresh.index_consistent());
  fs::remove_all(dir);
}

}  // namespace
}  // namespace msim::pipeline
