// The tracer stack: stride detector, static analyzer, block/application
// tracing, and the dilation cost model.
#include <gtest/gtest.h>

#include "common/check.hpp"
#include "common/units.hpp"
#include "machine/registry.hpp"
#include "memsim/address_stream.hpp"
#include "test_support.hpp"
#include "trace/dilation.hpp"
#include "trace/static_analysis.hpp"
#include "trace/stride_detector.hpp"
#include "trace/tracer.hpp"
#include "workload/apps.hpp"

namespace msim::trace {
namespace {

TEST(StrideDetector, PureUnitStride) {
  StrideDetector detector(8);
  for (std::uint64_t i = 0; i < 1000; ++i) {
    detector.observe({.pc = 0, .address = 0x1000 + i * 8});
  }
  EXPECT_GT(detector.counts().unit_fraction(), 0.99);
}

TEST(StrideDetector, ShortStrides) {
  StrideDetector detector(8);
  for (std::uint64_t i = 0; i < 1000; ++i) {
    detector.observe({.pc = 0, .address = 0x1000 + i * 32});  // stride 4
  }
  EXPECT_GT(detector.counts().short_fraction(), 0.99);
}

TEST(StrideDetector, ThresholdBoundary) {
  // Stride 8 elements (64 bytes) is "short"; stride 9 (72 bytes) random.
  StrideDetector at(8), beyond(8);
  for (std::uint64_t i = 0; i < 100; ++i) {
    at.observe({.pc = 0, .address = i * 64});
    beyond.observe({.pc = 0, .address = i * 72});
  }
  EXPECT_GT(at.counts().short_fraction(), 0.95);
  EXPECT_GT(beyond.counts().random_fraction(), 0.95);
}

TEST(StrideDetector, BackwardStridesClassified) {
  StrideDetector detector(8);
  for (std::uint64_t i = 0; i < 100; ++i) {
    detector.observe({.pc = 0, .address = 1 << 20});
    detector.observe({.pc = 1, .address = (1 << 20) - i * 8});
  }
  // pc 1 walks backward with stride -1: still unit.
  EXPECT_GT(detector.counts().unit_fraction(), 0.45);
}

TEST(StrideDetector, RandomStream) {
  StrideDetector detector(8);
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    detector.observe({.pc = 0, .address = rng.uniform_u64(1 << 24) * 8});
  }
  EXPECT_GT(detector.counts().random_fraction(), 0.95);
}

TEST(StrideDetector, PcSeparationDisentanglesInterleaving) {
  // Two interleaved unit-stride walks look random without PC separation;
  // with it they classify as unit.
  StrideDetector detector(8);
  for (std::uint64_t i = 0; i < 500; ++i) {
    detector.observe({.pc = 0, .address = 0x10000 + i * 8});
    detector.observe({.pc = 1, .address = 0x90000 + i * 8});
  }
  EXPECT_GT(detector.counts().unit_fraction(), 0.99);
}

TEST(StrideDetector, FirstReferencePerPcIsRandom) {
  StrideDetector detector(8);
  detector.observe({.pc = 7, .address = 0});
  EXPECT_EQ(detector.counts().random, 1u);
  EXPECT_EQ(detector.counts().total(), 1u);
}

TEST(StrideDetector, ResetClears) {
  StrideDetector detector(8);
  detector.observe({.pc = 0, .address = 0});
  detector.reset();
  EXPECT_EQ(detector.counts().total(), 0u);
}

TEST(StrideDetector, MisalignedDeltasAreRandom) {
  StrideDetector detector(8);
  for (std::uint64_t i = 0; i < 100; ++i) {
    detector.observe({.pc = 0, .address = i * 12});  // not element aligned
  }
  EXPECT_GT(detector.counts().random_fraction(), 0.95);
}

workload::BasicBlock serial_block() {
  return workload::BasicBlock{
      .name = "serial",
      .flops_per_iteration = 1,
      .refs_per_iteration = 4,
      .element_bytes = 8,
      .iterations = 1000,
      .mix = {.unit = 1.0, .short_ = 0.0, .random = 0.0,
              .short_stride_elements = 2},
      .working_set_bytes = 64 * KiB,
      .dependency = memsim::DependencyClass::Serial,
      .ilp_efficiency = 0.3};
}

TEST(StaticAnalyzer, PerfectAnalyzerMatchesTruth) {
  const StaticAnalyzer perfect(0.0, 0.0);
  auto block = serial_block();
  EXPECT_TRUE(perfect.dependency_limited(block));
  block.dependency = memsim::DependencyClass::Independent;
  EXPECT_FALSE(perfect.dependency_limited(block));
}

TEST(StaticAnalyzer, VerdictIsDeterministicPerBlock) {
  const StaticAnalyzer analyzer(0.3, 0.3);
  const auto block = serial_block();
  const bool verdict = analyzer.dependency_limited(block);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(analyzer.dependency_limited(block), verdict);
  }
}

TEST(StaticAnalyzer, ErrorRatesAreApproximatelyRespected) {
  const StaticAnalyzer analyzer(0.2, 0.1);
  int false_negatives = 0, false_positives = 0;
  const int n = 2000;
  for (int i = 0; i < n; ++i) {
    auto block = serial_block();
    block.name = "block_" + std::to_string(i);
    if (!analyzer.dependency_limited(block)) ++false_negatives;
    block.dependency = memsim::DependencyClass::Independent;
    block.name += "_indep";
    if (analyzer.dependency_limited(block)) ++false_positives;
  }
  EXPECT_NEAR(false_negatives / static_cast<double>(n), 0.2, 0.03);
  EXPECT_NEAR(false_positives / static_cast<double>(n), 0.1, 0.03);
}

TEST(StaticAnalyzer, RejectsBadRates) {
  EXPECT_THROW(StaticAnalyzer(-0.1, 0.0), precondition_error);
  EXPECT_THROW(StaticAnalyzer(0.0, 1.1), precondition_error);
}

TEST(Tracer, ExactCountsObservedFractions) {
  workload::BasicBlock block{
      .name = "traced",
      .flops_per_iteration = 7,
      .refs_per_iteration = 10,
      .element_bytes = 8,
      .iterations = 100000,
      .mix = {.unit = 0.6, .short_ = 0.2, .random = 0.2,
              .short_stride_elements = 4},
      .working_set_bytes = 2 * MiB,
      .branch_density = 0.15,
      .ilp_efficiency = 0.3};
  const BlockSignature signature = trace_block(block, "phase");
  // Counters count exactly.
  EXPECT_EQ(signature.flops, 700000u);
  EXPECT_EQ(signature.refs, 1000000u);
  EXPECT_DOUBLE_EQ(signature.branch_density, 0.15);
  // Observed fractions track the generative mix within sampling error.
  EXPECT_NEAR(signature.unit_fraction, 0.6, 0.03);
  EXPECT_NEAR(signature.short_fraction, 0.2, 0.03);
  EXPECT_NEAR(signature.random_fraction, 0.2, 0.03);
  const double total = signature.unit_fraction + signature.short_fraction +
                       signature.random_fraction;
  EXPECT_NEAR(total, 1.0, 1e-9);
  // Working set recovered within a factor of two.
  EXPECT_GT(signature.working_set_estimate, 1 * MiB);
  EXPECT_LT(signature.working_set_estimate, 4 * MiB);
}

TEST(Tracer, SampleNeverExceedsActualReferences) {
  workload::BasicBlock block = serial_block();
  block.iterations = 3;  // only 12 refs exist
  TracerOptions options;
  options.sample_refs = 1 << 20;
  EXPECT_NO_THROW((void)trace_block(block, "p", options));
}

/// Property: tracing every TI-05 instance yields consistent signatures.
class TraceAppProperty
    : public ::testing::TestWithParam<msim::testing::AppInstance> {};

TEST_P(TraceAppProperty, SignatureIsConsistentWithModel) {
  const auto& instance = GetParam();
  const auto app =
      workload::find_test_case(instance.app).build(instance.nprocs);
  const auto signature =
      trace_application(app, machine::base_system_name());

  EXPECT_EQ(signature.app, instance.app);
  EXPECT_EQ(signature.nprocs, instance.nprocs);
  EXPECT_EQ(signature.timesteps, app.timesteps);
  EXPECT_EQ(signature.traced_on, machine::base_system_name());

  // Exact totals match the model (counters don't sample).
  EXPECT_EQ(signature.total_flops_per_timestep(),
            app.total_flops_per_timestep());
  EXPECT_EQ(signature.total_bytes_per_timestep(),
            app.total_bytes_per_timestep());

  // MPIDTRACE records the communication schedule verbatim.
  ASSERT_EQ(signature.comm.size(), app.phases.size());
  for (std::size_t i = 0; i < app.phases.size(); ++i) {
    EXPECT_EQ(signature.comm[i].events.size(), app.phases[i].comm.size());
  }

  // Observed stride fractions stay near the generative mixes.
  std::size_t block_index = 0;
  for (const auto& phase : app.phases) {
    for (const auto& block : phase.blocks) {
      const trace::BlockView traced = signature.blocks[block_index++];
      EXPECT_EQ(traced.name(), block.name);
      EXPECT_NEAR(traced.unit_fraction(), block.mix.unit, 0.05)
          << block.name;
      EXPECT_NEAR(traced.random_fraction(), block.mix.random, 0.05)
          << block.name;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Ti05, TraceAppProperty,
    ::testing::ValuesIn(msim::testing::all_app_instances()),
    [](const auto& info) {
      return info.param.app + "_" + std::to_string(info.param.nprocs);
    });

TEST(Dilation, ThirtyTimesMemoryTraceCost) {
  const auto cost = tracing_cost(3600.0, 64);
  EXPECT_NEAR(cost.memory_hours, 64.0 * 30.0, 1e-9);
  EXPECT_NEAR(cost.counter_hours, 64.0 * 1.02, 1e-9);
  EXPECT_THROW((void)tracing_cost(0.0, 64), precondition_error);
  EXPECT_THROW((void)tracing_cost(10.0, 0), precondition_error);
}

}  // namespace
}  // namespace msim::trace
