#include "commands.hpp"

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <optional>

#include "common/parse.hpp"
#include "obs/run_record.hpp"
#include "pipeline/dist_protocol.hpp"
#include "serve/serve_protocol.hpp"
#include "serve/server.hpp"

#include "common/table.hpp"
#include "common/units.hpp"
#include "machine/config_io.hpp"
#include "machine/registry.hpp"
#include "metrics/study.hpp"
#include "pipeline/study_builder.hpp"
#include "probes/probe_io.hpp"
#include "probes/synthetic.hpp"
#include "report/report.hpp"
#include "simulate/executor.hpp"
#include "stats/summary.hpp"
#include "trace/signature_io.hpp"
#include "trace/tracer.hpp"
#include "convolve/convolver.hpp"
#include "workload/app_io.hpp"
#include "workload/apps.hpp"

namespace msim::cli {

namespace {

/// Extract "--flag value" from args; returns nullopt if absent.
std::optional<std::string> take_option(Args& args, const std::string& flag) {
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == flag && i + 1 < args.size()) {
      std::string value = args[i + 1];
      args.erase(args.begin() + static_cast<std::ptrdiff_t>(i),
                 args.begin() + static_cast<std::ptrdiff_t>(i + 2));
      return value;
    }
  }
  return std::nullopt;
}

bool take_flag(Args& args, const std::string& flag) {
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i] == flag) {
      args.erase(args.begin() + static_cast<std::ptrdiff_t>(i));
      return true;
    }
  }
  return false;
}

void write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "error: cannot write %s\n", path.c_str());
    return;
  }
  out << content;
  std::fprintf(stderr, "wrote %s\n", path.c_str());
}

int usage_error(const char* message) {
  std::fprintf(stderr, "error: %s\n\n", message);
  print_usage();
  return 2;
}

/// Strict processor-count parsing for every command taking <nprocs>:
/// whole-string decimal and positive, so "64x", "1e3" and overflowing
/// values become usage errors instead of silently truncated prefixes
/// (atoi accepted all three).
std::optional<int> parse_nprocs(const std::string& text) {
  const std::optional<int> value = parse_int(text);
  if (!value || *value <= 0) return std::nullopt;
  return value;
}

/// The paper study, built through the staged pipeline with the artifact
/// cache on: repeated CLI invocations in the same tree reuse the campaign,
/// probe and trace artifacts instead of recomputing them.
const metrics::Study& cached_study() {
  static const metrics::Study study = [] {
    pipeline::StudyBuilder builder;
    builder.cache(true);
    metrics::Study built = builder.build();
    // Diagnostics go to stderr; stdout carries only command output.
    std::fprintf(stderr, "(%s)\n", builder.stats().summary().c_str());
    return built;
  }();
  return study;
}

metrics::Metric metric_from_token(const std::string& token) {
  for (metrics::Metric metric : metrics::all_metrics()) {
    if (metrics::row_label(metric) == token) return metric;
  }
  // Accept bare numbers 1..9 too.
  for (metrics::Metric metric : metrics::paper_metrics()) {
    if (metrics::row_label(metric).substr(0, 1) == token) return metric;
  }
  throw precondition_error("unknown metric '" + token +
                           "' (use 1..9, 1-S..9-P, B-E, B-F)");
}

}  // namespace

void print_usage() {
  std::printf(
      "msim — trace-convolution performance prediction (SC'05 "
      "reproduction)\n\n"
      "usage: msim <command> [args]\n\n"
      "commands:\n"
      "  machines                         list the machine registry\n"
      "  show-machine <name>              dump a machine description\n"
      "  probe <machine> [--out FILE]     run HPL/STREAM/GUPS/MAPS/NETBENCH\n"
      "  trace <app> <nprocs> [--out FILE]  trace an application on the "
      "base system\n"
      "  predict <app> <nprocs> <machine> [--metric M] [--json]\n"
      "                                   predict a run time (default: all "
      "metrics)\n"
      "  rank <app> <nprocs> [--metric M] rank every system for an app\n"
      "  campaign [--no-composites]       run the full study (Table 4)\n"
      "  export-app <app> <nprocs> --out FILE\n"
      "                                   dump a TI-05 app model as text\n"
      "  predict-custom <app-file> <machine> [--metric M]\n"
      "                                   trace + predict a user-defined "
      "app\n"
      "  worker [--cache-dir DIR] [--cache-max-bytes N] [--worker-id K]\n"
      "                                   distributed-build worker "
      "(spawned by the coordinator;\n"
      "                                   JSON requests on stdin, replies "
      "on stdout)\n"
      "  serve [--socket PATH] [--threads N] [--max-batch N]\n"
      "        [--cache-dir DIR] [--cache-max-bytes N]\n"
      "                                   resident prediction service: "
      "study built once,\n"
      "                                   JSON queries on a Unix socket "
      "(or stdio) until shutdown\n\n"
      "telemetry (any command): --trace[=FILE] write a Chrome trace "
      "(default trace.json),\n"
      "  --metrics print a metrics table to stderr at exit; env "
      "MSIM_TRACE=FILE / MSIM_METRICS=1\n\n"
      "apps: AVUS_Standard AVUS_Large HYCOM_Standard OVERFLOW2_Standard "
      "RFCTH_Standard\n");
}

int cmd_machines(const Args&) {
  AsciiTable table({"Name", "Architecture", "CPUs", "Rmax/proc", "Clock"});
  table.set_align(2, Align::Right);
  table.set_align(3, Align::Right);
  table.set_align(4, Align::Right);
  for (const auto& machine : machine::all()) {
    table.add_row({machine.name, machine.architecture,
                   std::to_string(machine.total_processors),
                   format_rate(machine.rmax_flops(), "FLOP"),
                   AsciiTable::num(machine.cpu.clock_ghz, 2) + " GHz"});
  }
  std::printf("%s", table.render().c_str());
  std::printf("(base system for tracing: %s)\n",
              machine::base_system_name().c_str());
  return 0;
}

int cmd_show_machine(const Args& args) {
  if (args.size() != 1) return usage_error("show-machine needs a name");
  std::printf("%s", machine::to_text(machine::find(args[0])).c_str());
  return 0;
}

int cmd_probe(const Args& raw_args) {
  Args args = raw_args;
  const auto out_path = take_option(args, "--out");
  if (args.size() != 1) return usage_error("probe needs a machine name");

  const auto& machine = machine::find(args[0]);
  const auto set = probes::run_probe_suite(machine);
  std::printf("Probe suite on %s (%s):\n", set.machine.c_str(),
              machine.architecture.c_str());
  std::printf("  HPL Rmax/proc: %s\n",
              format_rate(set.hpl_rmax, "FLOP").c_str());
  std::printf("  STREAM:        %s\n",
              format_rate(set.stream_bw, "B").c_str());
  std::printf("  GUPS:          %s\n", format_rate(set.gups_bw, "B").c_str());
  std::printf("  NETBENCH:      %.2f us latency, %s bandwidth, 8B "
              "allreduce@64 %.1f us\n",
              set.net.latency_s * 1e6,
              format_rate(set.net.bandwidth, "B").c_str(),
              set.net.allreduce_small_s * 1e6);
  std::printf("  MAPS:          %zu-point curves (unit/random x "
              "standard/dependency)\n",
              set.maps_unit.points.size());
  if (out_path) write_file(*out_path, probes::to_text(set));
  return 0;
}

int cmd_trace(const Args& raw_args) {
  Args args = raw_args;
  const auto out_path = take_option(args, "--out");
  if (args.size() != 2) return usage_error("trace needs <app> <nprocs>");

  const auto& test_case = workload::find_test_case(args[0]);
  const auto parsed = parse_nprocs(args[1]);
  if (!parsed) return usage_error("nprocs must be a positive integer");
  const int nprocs = *parsed;

  const auto app = test_case.build(nprocs);
  const auto signature =
      trace::trace_application(app, machine::base_system_name());

  AsciiTable table({"Block", "Unit", "Short", "Random", "WS estimate",
                    "Dep?"});
  for (std::size_t c = 1; c < 4; ++c) table.set_align(c, Align::Right);
  for (const trace::BlockView block : signature.blocks) {
    table.add_row({block.name(), AsciiTable::num(block.unit_fraction(), 2),
                   AsciiTable::num(block.short_fraction(), 2),
                   AsciiTable::num(block.random_fraction(), 2),
                   format_bytes(block.working_set_estimate()),
                   block.dependency_limited() ? "yes" : "no"});
  }
  std::printf("Traced %s @ %d CPUs on %s:\n%s", signature.app.c_str(),
              nprocs, signature.traced_on.c_str(), table.render().c_str());
  if (out_path) write_file(*out_path, trace::to_text(signature));
  return 0;
}

int cmd_predict(const Args& raw_args) {
  Args args = raw_args;
  const auto metric_token = take_option(args, "--metric");
  const bool as_json = take_flag(args, "--json");
  if (args.size() != 3) {
    return usage_error("predict needs <app> <nprocs> <machine>");
  }
  const std::string app = args[0];
  const auto parsed = parse_nprocs(args[1]);
  const std::string machine = args[2];
  if (!parsed) return usage_error("nprocs must be a positive integer");
  const int nprocs = *parsed;

  const auto& study = cached_study();
  const double actual = study.observations().at(app, nprocs, machine);

  std::vector<metrics::Metric> metric_list;
  if (metric_token) {
    metric_list = {metric_from_token(*metric_token)};
  } else {
    metric_list = metrics::all_metrics();
  }

  if (as_json) {
    // Byte-identical to the result object inside a served predict reply
    // (serve/serve_protocol.hpp) — what the CI parity check diffs.
    std::printf("%s\n",
                serve::predict_result_json(study, app, nprocs, machine,
                                           metric_list)
                    .c_str());
    return 0;
  }

  AsciiTable table({"Metric", "Predicted (s)", "\"Actual\" (s)",
                    "Error (%)"});
  for (std::size_t c = 1; c < 4; ++c) table.set_align(c, Align::Right);
  for (metrics::Metric metric : metric_list) {
    const double predicted = study.predict(metric, app, nprocs, machine);
    table.add_row(
        {metrics::row_label(metric) + " " + metrics::description(metric),
         AsciiTable::num(predicted, 0), AsciiTable::num(actual, 0),
         AsciiTable::num(stats::signed_percent_error(predicted, actual),
                         1)});
  }
  std::printf("%s @ %d CPUs on %s:\n%s", app.c_str(), nprocs,
              machine.c_str(), table.render().c_str());
  return 0;
}

int cmd_rank(const Args& raw_args) {
  Args args = raw_args;
  const auto metric_token = take_option(args, "--metric");
  if (args.size() != 2) return usage_error("rank needs <app> <nprocs>");
  const std::string app = args[0];
  const auto parsed = parse_nprocs(args[1]);
  if (!parsed) return usage_error("nprocs must be a positive integer");
  const int nprocs = *parsed;
  const metrics::Metric metric =
      metric_token ? metric_from_token(*metric_token)
                   : metrics::Metric::P9_HplMapsNetDep;

  const auto& study = cached_study();
  struct Row {
    std::string machine;
    double predicted;
    double actual;
  };
  std::vector<Row> rows;
  for (const auto& machine : study.target_names()) {
    rows.push_back(Row{machine,
                       study.predict(metric, app, nprocs, machine),
                       study.observations().at(app, nprocs, machine)});
  }
  std::sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
    return a.predicted < b.predicted;
  });

  AsciiTable table({"Rank", "System", "Predicted (s)", "\"Actual\" (s)"});
  table.set_align(0, Align::Right);
  table.set_align(2, Align::Right);
  table.set_align(3, Align::Right);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    table.add_row({std::to_string(i + 1), rows[i].machine,
                   AsciiTable::num(rows[i].predicted, 0),
                   AsciiTable::num(rows[i].actual, 0)});
  }
  std::printf("%s @ %d CPUs ranked by %s:\n%s", app.c_str(), nprocs,
              metrics::description(metric).c_str(), table.render().c_str());
  return 0;
}

int cmd_campaign(const Args& raw_args) {
  Args args = raw_args;
  const bool no_composites = take_flag(args, "--no-composites");
  if (!args.empty()) return usage_error("campaign takes no positional args");

  const auto& study = cached_study();
  const auto predictions = study.evaluate(
      no_composites ? metrics::paper_metrics() : metrics::all_metrics());
  std::printf("%s",
              report::render_table4(study, predictions, !no_composites)
                  .c_str());
  return 0;
}

int cmd_export_app(const Args& raw_args) {
  Args args = raw_args;
  const auto out_path = take_option(args, "--out");
  if (args.size() != 2 || !out_path) {
    return usage_error("export-app needs <app> <nprocs> --out FILE");
  }
  const auto& test_case = workload::find_test_case(args[0]);
  const auto nprocs = parse_nprocs(args[1]);
  if (!nprocs) return usage_error("nprocs must be a positive integer");
  write_file(*out_path, workload::to_text(test_case.build(*nprocs)));
  return 0;
}

int cmd_predict_custom(const Args& raw_args) {
  Args args = raw_args;
  const auto metric_token = take_option(args, "--metric");
  if (args.size() != 2) {
    return usage_error("predict-custom needs <app-file> <machine>");
  }

  std::ifstream in(args[0]);
  if (!in) return usage_error("cannot read the app file");
  std::stringstream buffer;
  buffer << in.rdbuf();
  const workload::AppModel app = workload::app_from_text(buffer.str());

  const auto& base = machine::find(machine::base_system_name());
  const auto& target = machine::find(args[1]);
  const auto base_probes = probes::run_probe_suite(base);
  const auto target_probes = probes::run_probe_suite(target);
  const auto signature = trace::trace_application(app, base.name);
  const double base_seconds = simulate::execute(app, base).wall_seconds;
  const double actual = simulate::execute(app, target).wall_seconds;

  const auto predictive =
      metric_token
          ? metrics::predictive_of(metric_from_token(*metric_token))
          : convolve::PredictiveMetric::M9_HplMapsNetDep;
  if (!predictive) {
    return usage_error("predict-custom supports predictive metrics 4-9");
  }
  const double predicted = convolve::predict_time(
      signature, target_probes, base_probes, base_seconds, *predictive);

  std::printf("%s @ %d CPUs (%d timesteps), traced on %s\n",
              app.name.c_str(), app.nprocs, app.timesteps,
              base.name.c_str());
  std::printf("  measured on base:       %9.0f s\n", base_seconds);
  std::printf("  predicted on %-10s %9.0f s (%s)\n",
              (target.name + ":").c_str(), predicted,
              convolve::to_string(*predictive).c_str());
  std::printf("  \"actual\" on target:     %9.0f s  (error %+.1f%%)\n",
              actual, stats::signed_percent_error(predicted, actual));
  return 0;
}

int cmd_worker(const Args& raw_args) {
  Args args = raw_args;
  const auto cache_dir = take_option(args, "--cache-dir");
  const auto cache_max = take_option(args, "--cache-max-bytes");
  const auto worker_id = take_option(args, "--worker-id");
  if (!args.empty()) {
    return usage_error(
        "worker takes only --cache-dir DIR --cache-max-bytes N "
        "--worker-id K");
  }
  // One compute thread per worker process: the coordinator owns the
  // fan-out, so a worker that spawned its own pool would oversubscribe.
  ::setenv("MSIM_THREADS", "1", 1);
  std::uint64_t max_bytes = 0;
  if (cache_max) {
    const auto parsed = parse_u64(*cache_max);
    if (!parsed) {
      return usage_error("--cache-max-bytes must be an unsigned integer");
    }
    max_bytes = *parsed;
  }
  const pipeline::ArtifactCache cache(
      cache_dir ? *cache_dir : std::string{}, max_bytes);
  if (worker_id) obs::record_run_info("dist_worker", *worker_id);
  // Replies go to stdout (nothing else in the process writes there);
  // diagnostics stay on stderr as everywhere in msim.
  return pipeline::run_worker_loop(stdin, stdout, cache);
}

int cmd_serve(const Args& raw_args) {
  Args args = raw_args;
  serve::ServeOptions options = serve::ServeOptions::from_env();
  const auto socket_path = take_option(args, "--socket");
  const auto threads = take_option(args, "--threads");
  const auto max_batch = take_option(args, "--max-batch");
  const auto cache_dir = take_option(args, "--cache-dir");
  const auto cache_max = take_option(args, "--cache-max-bytes");
  if (!args.empty()) {
    return usage_error(
        "serve takes only --socket PATH --threads N --max-batch N "
        "--cache-dir DIR --cache-max-bytes N");
  }
  if (socket_path) options.socket_path = *socket_path;
  if (threads) {
    const auto parsed = parse_unsigned(*threads);
    if (!parsed) return usage_error("--threads must be an unsigned integer");
    options.threads = *parsed;
  }
  if (max_batch) {
    const auto parsed = parse_u64(*max_batch);
    if (!parsed || *parsed == 0) {
      return usage_error("--max-batch must be a positive integer");
    }
    options.max_batch = static_cast<std::size_t>(*parsed);
  }
  std::optional<std::uint64_t> cache_max_bytes;
  if (cache_max) {
    const auto parsed = parse_u64(*cache_max);
    if (!parsed) {
      return usage_error("--cache-max-bytes must be an unsigned integer");
    }
    cache_max_bytes = *parsed;
  }

  obs::record_run_info("experiment", "serve");
  // Build the study once, resident, with the cache on: a warm cache
  // serves every probe artifact through the mmap read path, a cold one
  // fills it for the next start.
  pipeline::StudyBuilder builder;
  builder.cache(true);
  if (cache_dir) builder.cache_dir(*cache_dir);
  if (cache_max_bytes) builder.cache_max_bytes(*cache_max_bytes);
  serve::PredictionService service(builder.build(), options.threads,
                                   options.max_batch);
  std::fprintf(stderr, "(%s)\n", builder.stats().summary().c_str());

  if (options.socket_path.empty()) {
    std::fprintf(stderr,
                 "msim serve: resident on stdio (threads=%u max-batch=%zu); "
                 "one JSON request per line\n",
                 options.threads, options.max_batch);
    return serve::run_stdio_server(stdin, stdout, service);
  }
  std::fprintf(stderr,
               "msim serve: resident on %s (threads=%u max-batch=%zu)\n",
               options.socket_path.c_str(), options.threads,
               options.max_batch);
  const int code = serve::run_socket_server(options.socket_path, service);
  if (code != 0) {
    std::fprintf(stderr, "error: cannot bind %s\n",
                 options.socket_path.c_str());
  }
  return code;
}

}  // namespace msim::cli
