// msim command-line interface: the library's workflows (probe, trace,
// predict, rank, campaign) from a shell. See `msim help` or README.md.
#include <cstdio>
#include <exception>
#include <functional>
#include <map>
#include <string>

#include "commands.hpp"
#include "obs/telemetry.hpp"
#include "report/report.hpp"

int main(int argc, char** argv) {
  using namespace msim::cli;

  // Telemetry is opt-in (MSIM_TRACE / MSIM_METRICS env or --trace /
  // --metrics anywhere on the command line) and never touches stdout.
  msim::obs::set_metrics_renderer(&msim::report::render_metrics);
  msim::obs::init_from_env();
  msim::obs::install_exit_writer();

  const std::map<std::string, std::function<int(const Args&)>> commands = {
      {"machines", cmd_machines},
      {"show-machine", cmd_show_machine},
      {"probe", cmd_probe},
      {"trace", cmd_trace},
      {"predict", cmd_predict},
      {"rank", cmd_rank},
      {"campaign", cmd_campaign},
      {"export-app", cmd_export_app},
      {"predict-custom", cmd_predict_custom},
      {"worker", cmd_worker},
      {"serve", cmd_serve},
  };

  if (argc < 2) {
    print_usage();
    return 2;
  }
  const std::string command = argv[1];
  if (command == "help" || command == "--help" || command == "-h") {
    print_usage();
    return 0;
  }
  const auto it = commands.find(command);
  if (it == commands.end()) {
    std::fprintf(stderr, "error: unknown command '%s'\n\n", command.c_str());
    print_usage();
    return 2;
  }

  Args args;
  for (int i = 2; i < argc; ++i) {
    if (msim::obs::handle_telemetry_flag(argv[i])) continue;
    args.emplace_back(argv[i]);
  }
  try {
    return it->second(args);
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 1;
  }
}
