// Tokenizer for msim-lint: enough C++ lexing to make rule matching
// reliable — comments and preprocessor lines are stripped (with
// `msim-lint:` directives harvested from comments), string/char literals
// are single tokens, `::` and `->` are fused so "preceded by" checks are
// one-token lookbehinds. Everything else is a single-character punct.
#include "msim_lint/lint.hpp"

#include <cctype>

namespace msim::lint {

namespace {

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/// Parse one `msim-lint: <verb>(<args>)` directive out of a comment's
/// text and record it against `line`.
void harvest_directive(const std::string& comment, int line, LexedFile& out) {
  const std::string marker = "msim-lint:";
  const std::size_t at = comment.find(marker);
  if (at == std::string::npos) return;
  std::size_t pos = at + marker.size();
  while (pos < comment.size() &&
         std::isspace(static_cast<unsigned char>(comment[pos]))) {
    ++pos;
  }
  std::size_t verb_end = pos;
  while (verb_end < comment.size() &&
         (ident_char(comment[verb_end]) || comment[verb_end] == '-')) {
    ++verb_end;
  }
  const std::string verb = comment.substr(pos, verb_end - pos);
  const std::size_t open = comment.find('(', verb_end);
  if (open == std::string::npos) return;
  const std::size_t close = comment.find(')', open);
  if (close == std::string::npos) return;

  std::vector<std::string> args;
  std::string current;
  for (std::size_t i = open + 1; i < close; ++i) {
    const char c = comment[i];
    if (c == ',') {
      if (!current.empty()) args.push_back(current);
      current.clear();
    } else if (!std::isspace(static_cast<unsigned char>(c))) {
      current += c;
    }
  }
  if (!current.empty()) args.push_back(current);
  if (args.empty()) return;

  if (verb == "allow") {
    auto& slot = out.allows[line];
    slot.insert(slot.end(), args.begin(), args.end());
  } else if (verb == "key-for") {
    auto& slot = out.key_for[line];
    slot.insert(slot.end(), args.begin(), args.end());
  } else if (verb == "guarded-by") {
    auto& slot = out.guarded_by[line];
    slot.insert(slot.end(), args.begin(), args.end());
  } else if (verb == "proto" && args.size() >= 2) {
    out.protos.push_back(ProtoMark{args[0], args[1], line});
  }
}

/// Harvest facts from one full preprocessor line: the quoted operand of
/// an `#include "..."` (for the layer-DAG pass) and any trailing `//`
/// comment directive (so an allow can ride on the include line itself).
void harvest_preprocessor(const std::string& text, int line, LexedFile& out) {
  std::size_t pos = 1;  // past '#'
  while (pos < text.size() &&
         std::isspace(static_cast<unsigned char>(text[pos]))) {
    ++pos;
  }
  if (text.compare(pos, 7, "include") == 0) {
    const std::size_t open = text.find('"', pos + 7);
    if (open != std::string::npos) {
      const std::size_t close = text.find('"', open + 1);
      if (close != std::string::npos) {
        out.includes.push_back(
            IncludeDecl{text.substr(open + 1, close - open - 1), line});
      }
    }
  }
  const std::size_t comment = text.find("//");
  if (comment != std::string::npos) {
    harvest_directive(text.substr(comment + 2), line, out);
  }
}

}  // namespace

LexedFile lex(const SourceFile& file) {
  LexedFile out;
  out.path = file.path;
  const std::string& s = file.text;
  const std::size_t n = s.size();
  std::size_t i = 0;
  int line = 1;
  bool at_line_start = true;  // only whitespace seen so far on this line

  auto advance_newline = [&](char c) {
    if (c == '\n') {
      ++line;
      at_line_start = true;
    }
  };

  while (i < n) {
    const char c = s[i];

    if (c == '\n') {
      advance_newline(c);
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }

    // Preprocessor directive: skip to end of line (honoring backslash
    // continuations). Macro bodies are not linted, but quoted include
    // operands and trailing comment directives are harvested.
    if (c == '#' && at_line_start) {
      const int directive_line = line;
      std::string text;
      while (i < n) {
        if (s[i] == '\\' && i + 1 < n && s[i + 1] == '\n') {
          ++line;
          i += 2;
          continue;
        }
        if (s[i] == '\n') break;
        text += s[i];
        ++i;
      }
      harvest_preprocessor(text, directive_line, out);
      continue;
    }

    at_line_start = false;

    // Line comment.
    if (c == '/' && i + 1 < n && s[i + 1] == '/') {
      std::size_t end = i + 2;
      while (end < n && s[end] != '\n') ++end;
      harvest_directive(s.substr(i + 2, end - (i + 2)), line, out);
      i = end;
      continue;
    }

    // Block comment.
    if (c == '/' && i + 1 < n && s[i + 1] == '*') {
      std::size_t end = i + 2;
      std::string body;
      int body_line = line;
      while (end + 1 < n && !(s[end] == '*' && s[end + 1] == '/')) {
        if (s[end] == '\n') {
          harvest_directive(body, body_line, out);
          body.clear();
          ++line;
          body_line = line;
        } else {
          body += s[end];
        }
        ++end;
      }
      harvest_directive(body, body_line, out);
      i = end + 2 <= n ? end + 2 : n;
      continue;
    }

    // Raw string literal: R"delim( ... )delim".
    if (c == 'R' && i + 1 < n && s[i + 1] == '"') {
      std::size_t d = i + 2;
      std::string delim;
      while (d < n && s[d] != '(') delim += s[d++];
      const std::string closer = ")" + delim + "\"";
      const std::size_t body_start = d + 1;
      const std::size_t close = s.find(closer, body_start);
      const std::size_t body_end = close == std::string::npos ? n : close;
      const int start_line = line;
      for (std::size_t k = i; k < body_end; ++k) {
        if (s[k] == '\n') ++line;
      }
      out.tokens.push_back(Token{TokKind::String,
                                 s.substr(body_start, body_end - body_start),
                                 start_line});
      i = close == std::string::npos ? n : close + closer.size();
      continue;
    }

    // String / char literal.
    if (c == '"' || c == '\'') {
      const char quote = c;
      std::size_t end = i + 1;
      std::string body;
      while (end < n && s[end] != quote) {
        if (s[end] == '\\' && end + 1 < n) {
          body += s[end];
          body += s[end + 1];
          end += 2;
          continue;
        }
        if (s[end] == '\n') ++line;  // unterminated; keep line count sane
        body += s[end];
        ++end;
      }
      out.tokens.push_back(Token{
          quote == '"' ? TokKind::String : TokKind::CharLit, body, line});
      i = end < n ? end + 1 : n;
      continue;
    }

    if (ident_start(c)) {
      std::size_t end = i + 1;
      while (end < n && ident_char(s[end])) ++end;
      out.tokens.push_back(
          Token{TokKind::Identifier, s.substr(i, end - i), line});
      i = end;
      continue;
    }

    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::size_t end = i + 1;
      while (end < n) {
        const char d = s[end];
        if (ident_char(d) || d == '.' || d == '\'') {
          ++end;
        } else if ((d == '+' || d == '-') &&
                   (s[end - 1] == 'e' || s[end - 1] == 'E' ||
                    s[end - 1] == 'p' || s[end - 1] == 'P')) {
          ++end;  // exponent sign
        } else {
          break;
        }
      }
      out.tokens.push_back(Token{TokKind::Number, s.substr(i, end - i), line});
      i = end;
      continue;
    }

    // Fused operators the rules look behind for; everything else is a
    // single-character punct token.
    if (c == ':' && i + 1 < n && s[i + 1] == ':') {
      out.tokens.push_back(Token{TokKind::Punct, "::", line});
      i += 2;
      continue;
    }
    if (c == '-' && i + 1 < n && s[i + 1] == '>') {
      out.tokens.push_back(Token{TokKind::Punct, "->", line});
      i += 2;
      continue;
    }
    out.tokens.push_back(Token{TokKind::Punct, std::string(1, c), line});
    ++i;
  }
  return out;
}

}  // namespace msim::lint
