// Baseline store and reporting for msim-lint.
//
// The baseline grandfathers pre-existing findings so new rules can land
// strict without a flag-day cleanup: entries are fingerprinted by
// (rule, file, message) — not line numbers — so unrelated edits to a file
// do not invalidate them, and each fingerprint carries an occurrence
// count so duplicate findings in one file stay pinned. Regenerate with
// `msim-lint --write-baseline`; burn entries down by fixing the code.
#include "msim_lint/lint.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/hash.hpp"
#include "common/table.hpp"

namespace msim::lint {

namespace fs = std::filesystem;

std::string fingerprint(const Finding& finding) {
  Fnv1a hash;
  hash.update(finding.rule);
  hash.update("|");
  hash.update(finding.file);
  hash.update("|");
  hash.update(finding.message);
  return hex_digest(hash.digest());
}

Baseline parse_baseline(const std::string& text) {
  Baseline baseline;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream fields(line);
    std::string fp;
    int count = 0;
    if (!(fields >> fp >> count) || count <= 0) continue;
    baseline[fp] += count;
  }
  return baseline;
}

std::string render_baseline(const std::vector<Finding>& findings) {
  // fingerprint -> (count, exemplar) in first-seen (file-sorted) order.
  std::vector<std::pair<std::string, const Finding*>> order;
  std::map<std::string, int> counts;
  for (const Finding& finding : findings) {
    const std::string fp = fingerprint(finding);
    if (counts[fp]++ == 0) order.emplace_back(fp, &finding);
  }
  std::ostringstream out;
  out << "# msim-lint baseline — grandfathered findings.\n"
      << "# fingerprint count rule file message\n"
      << "# Regenerate with `msim-lint --write-baseline`; shrink it by "
         "fixing the code.\n";
  for (const auto& [fp, finding] : order) {
    out << fp << ' ' << counts[fp] << ' ' << finding->rule << ' '
        << finding->file << ' ' << finding->message << '\n';
  }
  return out.str();
}

void apply_baseline(LintResult& result, const Baseline& baseline) {
  Baseline remaining = baseline;
  for (Finding& finding : result.findings) {
    auto it = remaining.find(fingerprint(finding));
    if (it != remaining.end() && it->second > 0) {
      finding.baselined = true;
      --it->second;
    }
  }
}

std::vector<SourceFile> collect_tree(const std::string& root) {
  static const char* kRoots[] = {"src", "bench", "tools", "tests"};
  std::vector<SourceFile> files;
  for (const char* top : kRoots) {
    const fs::path dir = fs::path(root) / top;
    if (!fs::is_directory(dir)) continue;
    for (auto it = fs::recursive_directory_iterator(dir);
         it != fs::recursive_directory_iterator(); ++it) {
      if (it->is_directory()) {
        // Fixture corpora contain deliberate violations; build trees are
        // generated.
        const std::string name = it->path().filename().string();
        if (name == "lint_fixtures" || name.rfind("build", 0) == 0) {
          it.disable_recursion_pending();
        }
        continue;
      }
      const std::string ext = it->path().extension().string();
      if (ext != ".cpp" && ext != ".hpp" && ext != ".h") continue;
      std::ifstream in(it->path(), std::ios::binary);
      if (!in) continue;
      std::ostringstream text;
      text << in.rdbuf();
      SourceFile file;
      file.path = (fs::path(top) / fs::relative(it->path(), dir))
                      .generic_string();  // repo-relative, forward slashes
      file.text = text.str();
      files.push_back(std::move(file));
    }
  }
  std::sort(files.begin(), files.end(),
            [](const SourceFile& a, const SourceFile& b) {
              return a.path < b.path;
            });
  return files;
}

RepoInputs load_repo_inputs(const std::string& root) {
  const auto slurp = [](const fs::path& path, std::string& out) {
    std::ifstream in(path, std::ios::binary);
    if (!in) return false;
    std::ostringstream text;
    text << in.rdbuf();
    out = text.str();
    return true;
  };
  RepoInputs inputs;
  slurp(fs::path(root) / "tools/msim_lint/env_registry.txt",
        inputs.env_registry);
  std::string text;
  if (slurp(fs::path(root) / "README.md", text)) {
    inputs.docs.emplace("README.md", std::move(text));
  }
  const fs::path docs = fs::path(root) / "docs";
  if (fs::is_directory(docs)) {
    for (const auto& entry : fs::directory_iterator(docs)) {
      if (entry.path().extension() != ".md") continue;
      if (slurp(entry.path(), text)) {
        inputs.docs.emplace("docs/" + entry.path().filename().string(),
                            std::move(text));
      }
    }
  }
  return inputs;
}

std::string render_diagnostics(const LintResult& result) {
  std::ostringstream out;
  for (const Finding& finding : result.findings) {
    out << finding.file << ':' << finding.line << ": "
        << to_string(finding.severity) << " [" << finding.rule << "] "
        << finding.message;
    if (finding.baselined) out << " (baselined)";
    out << '\n';
  }
  return out.str();
}

std::string render_summary(const LintResult& result) {
  struct Row {
    int errors = 0;
    int warnings = 0;
    int baselined = 0;
  };
  std::map<std::string, Row> rows;
  for (const RuleInfo& rule : all_rules()) rows[rule.id];  // stable order
  for (const Finding& finding : result.findings) {
    Row& row = rows[finding.rule];
    if (finding.baselined) {
      ++row.baselined;
    } else if (finding.severity == Severity::Error) {
      ++row.errors;
    } else {
      ++row.warnings;
    }
  }

  AsciiTable table({"Rule", "Errors", "Warnings", "Baselined"});
  for (std::size_t c = 1; c < 4; ++c) table.set_align(c, Align::Right);
  Row total;
  for (const auto& [rule, row] : rows) {
    table.add_row({rule, std::to_string(row.errors),
                   std::to_string(row.warnings),
                   std::to_string(row.baselined)});
    total.errors += row.errors;
    total.warnings += row.warnings;
    total.baselined += row.baselined;
  }
  table.add_rule();
  table.add_row({"total", std::to_string(total.errors),
                 std::to_string(total.warnings),
                 std::to_string(total.baselined)});

  std::ostringstream out;
  out << table.render();
  out << "(" << result.suppressed << " finding(s) suppressed inline via "
      << "`msim-lint: allow(...)`)\n";
  return out.str();
}

}  // namespace msim::lint
