// Rule engine for msim-lint. Every rule is a token-pattern matcher over
// the lexed translation unit, scoped to the directories where its
// invariant holds. Two rules are cross-file: cache-key completeness
// (struct definitions live in headers, key functions in .cpp files) and
// obs name collisions (one instrument kind per name, repo-wide).
#include "msim_lint/lint.hpp"

#include <algorithm>
#include <cctype>
#include <set>
#include <unordered_set>

#include "msim_lint/lint_internal.hpp"

namespace msim::lint {

using namespace internal;

namespace {

/// The obs naming rules apply everywhere telemetry is *used*; the layer's
/// own implementation and its tests construct names dynamically.
bool obs_rules_apply(const std::string& path) {
  return (in_library(path) || in_bench_or_tools(path)) &&
         !starts_with(path, "src/obs/");
}

// --- rule registry ----------------------------------------------------

const std::vector<RuleInfo>& rule_registry() {
  static const std::vector<RuleInfo> rules = {
      {"determinism.random", Severity::Error,
       "ambient randomness (rand, random_device, ...) in library code; use "
       "msim::Rng (src/common/rng) so every draw is seeded and replayable"},
      {"determinism.wall-clock", Severity::Error,
       "wall-clock reads (time(), system_clock) in library code; results "
       "must not depend on when they were computed (steady_clock timing of "
       "diagnostics is fine)"},
      {"determinism.unordered-iteration", Severity::Error,
       "iteration over a hash-ordered container in library code; iteration "
       "order leaks into output, keys and artifacts — iterate a sorted copy "
       "or use std::map/std::set"},
      {"cache-key.missing-field", Severity::Error,
       "a field of a key-for() annotated spec struct is never fed to the "
       "content-key function; stale cache hits would silently reuse "
       "artifacts across semantically different configs"},
      {"cache-key.uncovered-struct", Severity::Error,
       "a spec struct that feeds cached artifacts has no key-for() "
       "annotated hash function"},
      {"stdout.in-library", Severity::Error,
       "library code writes to stdout; src/ returns strings and leaves the "
       "byte-diffable table stream to bench/ and tools/"},
      {"stdout.cout", Severity::Error,
       "std::cout in bench/tools; tables go through std::printf, "
       "diagnostics through std::fprintf(stderr, ...)"},
      {"stdout.diagnostic", Severity::Error,
       "diagnostic printed to stdout in bench/tools; stdout is a "
       "byte-diffable table stream, diagnostics belong on stderr"},
      {"obs.name-literal", Severity::Error,
       "telemetry name is not a string literal; exporters and CI greps "
       "depend on the name set being statically enumerable"},
      {"obs.name-format", Severity::Error,
       "telemetry name is not dotted.lowercase (counters/gauges/histograms: "
       "at least two [a-z0-9_-] segments joined by dots; spans: lowercase "
       "with optional ':' stage prefix)"},
      {"obs.name-collision", Severity::Error,
       "one telemetry name registered as two different instrument kinds; "
       "the exporter would emit conflicting event types"},
      {"unsafe.banned-function", Severity::Error,
       "banned unsafe / non-reentrant C API (strtok, sprintf, gmtime, ...); "
       "use the bounded or _r variants"},
      {"proto.one-sided", Severity::Error,
       "a proto() annotated protocol has only writer or only reader "
       "regions; annotate the other side so schema drift is checkable"},
      {"proto.unread-key", Severity::Error,
       "a JSON key written by a proto() writer region is never read by "
       "any reader region of the same protocol — dead payload or a "
       "misspelled reader"},
      {"proto.unwritten-key", Severity::Error,
       "a JSON key read by a proto() reader region is never written by "
       "any writer region of the same protocol — the read can only ever "
       "see the fallback"},
      {"proto.type-mismatch", Severity::Error,
       "one JSON key used with two different value types across a "
       "protocol's writer/reader regions (u64s ride as decimal strings "
       "on every msim wire)"},
      {"env.raw-getenv", Severity::Error,
       "raw getenv() outside src/common/parse.cpp; MSIM_* knobs flow "
       "through the checked env_* helpers so malformed values fall back "
       "whole instead of half-applying"},
      {"env.unregistered", Severity::Error,
       "an MSIM_* knob read in src/bench/tools is missing from "
       "tools/msim_lint/env_registry.txt (name parser default doc)"},
      {"env.parser-mismatch", Severity::Error,
       "an MSIM_* knob is parsed with a different env_* helper than its "
       "registry row declares (env_string is always allowed: run-record "
       "identity captures knobs verbatim)"},
      {"env.undocumented", Severity::Error,
       "a registered MSIM_* knob is not mentioned in the doc file its "
       "registry row points at"},
      {"env.registry-stale", Severity::Error,
       "an env_registry.txt row names a knob no scanned source reads; "
       "delete the row or restore the knob"},
      {"conc.raw-lock", Severity::Error,
       "raw .lock()/.unlock() on something that is not a scoped guard "
       "(unique_lock/shared_lock) declared in this file; an exception "
       "between the pair would deadlock — use RAII guards"},
      {"conc.flock-unpaired", Severity::Error,
       "a function acquires flock(LOCK_EX/LOCK_SH) but never releases "
       "LOCK_UN; release in the same function or wrap it in an RAII "
       "holder (release-only functions, e.g. destructors, are fine)"},
      {"conc.detached-thread", Severity::Error,
       "std::thread::detach() in library code; a detached thread "
       "outlives scope and races process teardown — join it"},
      {"conc.mutable-static", Severity::Error,
       "mutable namespace-scope state in src/ without a `msim-lint: "
       "guarded-by(<mutex>)` annotation naming a mutex in this file "
       "(const/constexpr/atomic/mutex/thread_local are exempt)"},
      {"layer.back-edge", Severity::Error,
       "an #include points from a lower layer to a higher one, breaking "
       "the DESIGN.md module DAG (common <- machine/obs/stats <- sims <- "
       "workload <- trace <- simulate <- probes <- convolve <- metrics "
       "<- report <- pipeline <- serve <- tools/bench)"},
  };
  return rules;
}

}  // namespace

namespace internal {

Severity severity_of(const std::string& rule,
                     const std::map<std::string, Severity>& overrides) {
  if (auto it = overrides.find(rule); it != overrides.end()) {
    return it->second;
  }
  for (const RuleInfo& info : rule_registry()) {
    if (info.id == rule) return info.severity;
  }
  return Severity::Error;
}

}  // namespace internal

namespace {

// --- determinism ------------------------------------------------------

void check_determinism(FileContext& ctx) {
  if (!in_library(ctx.lexed->path) || determinism_exempt(ctx.lexed->path)) {
    return;
  }
  const auto& toks = ctx.lexed->tokens;

  static const std::unordered_set<std::string> random_functions = {
      "rand",    "srand",   "rand_r",  "drand48", "erand48",
      "lrand48", "mrand48", "jrand48", "nrand48", "random_shuffle"};
  // Type-ish names: any mention is a dependency on ambient entropy or the
  // wall clock, call or not.
  static const std::unordered_set<std::string> random_types = {
      "random_device"};
  static const std::unordered_set<std::string> clock_types = {
      "system_clock", "high_resolution_clock"};

  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& tok = toks[i];
    if (tok.kind != TokKind::Identifier) continue;

    if (random_types.count(tok.text) != 0) {
      ctx.report("determinism.random", tok.line,
                 "'std::" + tok.text +
                     "' draws ambient entropy; seed an msim::Rng "
                     "(src/common/rng) instead");
      continue;
    }
    if (clock_types.count(tok.text) != 0) {
      ctx.report("determinism.wall-clock", tok.line,
                 "'" + tok.text +
                     "' reads the wall clock; results must be identical "
                     "whenever they are computed (use steady_clock only "
                     "for diagnostics)");
      continue;
    }

    if (!is_punct(next_token(toks, i), "(")) continue;
    if (is_member_or_foreign_qualified(toks, i)) continue;

    if (random_functions.count(tok.text) != 0) {
      ctx.report("determinism.random", tok.line,
                 "'" + tok.text +
                     "()' is ambient randomness; use msim::Rng "
                     "(src/common/rng) so draws are seeded and replayable");
      continue;
    }
    if (tok.text == "gettimeofday") {
      ctx.report("determinism.wall-clock", tok.line,
                 "'gettimeofday()' reads the wall clock");
      continue;
    }
    if (tok.text == "time" || tok.text == "clock") {
      // `time(...)` / `clock()` only when it is unambiguously the C
      // function: std::-qualified, or called with the classic argument.
      const Token* arg = i + 2 < toks.size() ? &toks[i + 2] : nullptr;
      const bool classic_arg =
          is_punct(arg, ")") ||
          (arg != nullptr && (arg->text == "0" || arg->text == "NULL" ||
                              arg->text == "nullptr"));
      const bool std_qualified = is_punct(prev_token(toks, i), "::") &&
                                 i >= 2 && is_ident(&toks[i - 2], "std");
      if (classic_arg || std_qualified) {
        ctx.report("determinism.wall-clock", tok.line,
                   "'" + tok.text + "()' reads the wall clock");
      }
    }
  }
}

/// Names of variables/members/parameters in this file declared with an
/// unordered container type (tokenizer-level: `unordered_xxx<...> name`).
std::set<std::string> unordered_decls(const std::vector<Token>& toks) {
  static const std::unordered_set<std::string> containers = {
      "unordered_map", "unordered_set", "unordered_multimap",
      "unordered_multiset"};
  std::set<std::string> names;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != TokKind::Identifier ||
        containers.count(toks[i].text) == 0) {
      continue;
    }
    std::size_t j = i + 1;
    if (j >= toks.size() || !is_punct(&toks[j], "<")) continue;
    int depth = 0;
    for (; j < toks.size(); ++j) {
      if (is_punct(&toks[j], "<")) ++depth;
      if (is_punct(&toks[j], ">")) {
        if (--depth == 0) {
          ++j;
          break;
        }
      }
    }
    // Skip ref/pointer/const decoration, then expect the declared name.
    while (j < toks.size() &&
           (is_punct(&toks[j], "&") || is_punct(&toks[j], "*") ||
            is_ident(&toks[j], "const"))) {
      ++j;
    }
    if (j >= toks.size() || toks[j].kind != TokKind::Identifier) continue;
    const Token* after = next_token(toks, j);
    if (is_punct(after, ";") || is_punct(after, "=") ||
        is_punct(after, "{") || is_punct(after, ",") ||
        is_punct(after, ")")) {
      names.insert(toks[j].text);
    }
  }
  return names;
}

/// `tracked` is the union of unordered-container names declared in this
/// file and in its paired header (members iterated in the .cpp are
/// declared in the .hpp).
void check_unordered_iteration(FileContext& ctx,
                               const std::set<std::string>& tracked) {
  if (!in_library(ctx.lexed->path) || determinism_exempt(ctx.lexed->path)) {
    return;
  }
  const auto& toks = ctx.lexed->tokens;
  if (tracked.empty()) return;

  for (std::size_t i = 0; i < toks.size(); ++i) {
    // Range-for whose range expression mentions a tracked container.
    if (is_ident(&toks[i], "for") && is_punct(next_token(toks, i), "(")) {
      std::size_t j = i + 1;
      int depth = 0;
      std::size_t colon = 0;
      for (; j < toks.size(); ++j) {
        if (is_punct(&toks[j], "(")) ++depth;
        if (is_punct(&toks[j], ")") && --depth == 0) break;
        if (depth == 1 && is_punct(&toks[j], ":") && colon == 0) colon = j;
      }
      if (colon != 0) {
        for (std::size_t k = colon + 1; k < j; ++k) {
          if (toks[k].kind == TokKind::Identifier &&
              tracked.count(toks[k].text) != 0) {
            ctx.report(
                "determinism.unordered-iteration", toks[i].line,
                "range-for over hash-ordered container '" + toks[k].text +
                    "'; iterate a sorted copy (or use std::map/std::set) so "
                    "downstream output and keys are order-stable");
            break;
          }
        }
      }
      continue;
    }
    // Explicit iterator walk: tracked.begin() / tracked.cbegin().
    if (toks[i].kind == TokKind::Identifier &&
        tracked.count(toks[i].text) != 0 &&
        is_punct(next_token(toks, i), ".")) {
      const Token* method = i + 2 < toks.size() ? &toks[i + 2] : nullptr;
      if (method != nullptr &&
          (method->text == "begin" || method->text == "cbegin")) {
        ctx.report("determinism.unordered-iteration", toks[i].line,
                   "iterator walk over hash-ordered container '" +
                       toks[i].text + "' (" + method->text +
                       "()); iteration order is not deterministic");
      }
    }
  }
}

// --- stdout discipline ------------------------------------------------

/// True when any argument of the call starting at the identifier token i
/// names `stdout` (e.g. fprintf(stdout, ...)).
bool call_mentions_stdout(const std::vector<Token>& toks, std::size_t i) {
  std::size_t j = i + 1;
  if (j >= toks.size() || !is_punct(&toks[j], "(")) return false;
  int depth = 0;
  for (; j < toks.size(); ++j) {
    if (is_punct(&toks[j], "(")) ++depth;
    if (is_punct(&toks[j], ")") && --depth == 0) break;
    if (is_ident(&toks[j], "stdout")) return true;
  }
  return false;
}

/// First string-literal argument of the call at identifier token i, or
/// nullptr (adjacent literal concatenation: the first fragment).
const Token* first_literal_arg(const std::vector<Token>& toks,
                               std::size_t i) {
  if (!is_punct(next_token(toks, i), "(")) return nullptr;
  const Token* arg = i + 2 < toks.size() ? &toks[i + 2] : nullptr;
  return arg != nullptr && arg->kind == TokKind::String ? arg : nullptr;
}

/// "error: ...", "warning: ...", "fatal: ..." (case-insensitive, colon
/// required) — the repo's diagnostic prefix convention.
bool looks_like_diagnostic(const std::string& literal) {
  std::size_t pos = 0;
  while (pos < literal.size() &&
         std::isspace(static_cast<unsigned char>(literal[pos]))) {
    ++pos;
  }
  std::string word;
  while (pos < literal.size() &&
         std::isalpha(static_cast<unsigned char>(literal[pos]))) {
    word += static_cast<char>(
        std::tolower(static_cast<unsigned char>(literal[pos])));
    ++pos;
  }
  if (pos >= literal.size() || literal[pos] != ':') return false;
  return word == "error" || word == "warning" || word == "fatal";
}

void check_stdout(FileContext& ctx) {
  const std::string& path = ctx.lexed->path;
  const bool library = in_library(path);
  const bool bench_tools = in_bench_or_tools(path);
  if (!library && !bench_tools) return;
  const auto& toks = ctx.lexed->tokens;

  static const std::unordered_set<std::string> stdout_writers = {
      "printf", "vprintf", "puts", "putchar"};
  static const std::unordered_set<std::string> stream_writers = {
      "fprintf", "vfprintf", "fputs", "fputc", "fwrite"};

  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& tok = toks[i];
    if (tok.kind != TokKind::Identifier) continue;

    if (tok.text == "cout") {
      if (library) {
        ctx.report("stdout.in-library", tok.line,
                   "std::cout in library code; return strings and let "
                   "bench/tools own the table stream");
      } else {
        ctx.report("stdout.cout", tok.line,
                   "std::cout in bench/tools; tables go through "
                   "std::printf, diagnostics through "
                   "std::fprintf(stderr, ...)");
      }
      continue;
    }

    if (is_member_or_foreign_qualified(toks, i)) continue;
    if (!is_punct(next_token(toks, i), "(")) continue;

    if (stdout_writers.count(tok.text) != 0) {
      if (library) {
        ctx.report("stdout.in-library", tok.line,
                   "'" + tok.text +
                       "()' writes to stdout from library code; src/ must "
                       "not print");
      } else if (const Token* lit = first_literal_arg(toks, i);
                 lit != nullptr && looks_like_diagnostic(lit->text)) {
        ctx.report("stdout.diagnostic", tok.line,
                   "diagnostic \"" + lit->text.substr(0, 40) +
                       "\" printed to stdout; use std::fprintf(stderr, ...) "
                       "so the table stream stays byte-diffable");
      }
      continue;
    }

    if (stream_writers.count(tok.text) != 0 &&
        call_mentions_stdout(toks, i)) {
      if (library) {
        ctx.report("stdout.in-library", tok.line,
                   "'" + tok.text +
                       "(stdout, ...)' writes to stdout from library code");
      } else {
        ctx.report("stdout.diagnostic", tok.line,
                   "'" + tok.text +
                       "(stdout, ...)' in bench/tools; tables use "
                       "std::printf, everything else goes to stderr");
      }
    }
  }
}

// --- obs naming -------------------------------------------------------

struct ObsRegistration {
  std::string name;
  std::string kind;  // counter / gauge / histogram
  std::string file;
  int line = 0;
};

bool valid_metric_name(const std::string& name) {
  bool saw_dot = false;
  bool segment_open = false;  // current segment has at least one char
  for (std::size_t i = 0; i < name.size(); ++i) {
    const char c = name[i];
    if (c == '.') {
      if (!segment_open) return false;  // empty segment
      saw_dot = true;
      segment_open = false;
      continue;
    }
    const bool ok = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
                    c == '_' || c == '-';
    if (!ok) return false;
    segment_open = true;
  }
  return saw_dot && segment_open;
}

bool valid_span_name(const std::string& name) {
  if (name.empty() || !(name[0] >= 'a' && name[0] <= 'z')) return false;
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
                    c == '_' || c == '-' || c == '.' || c == ':';
    if (!ok) return false;
  }
  return true;
}

void check_obs_names(FileContext& ctx,
                     std::vector<ObsRegistration>& registrations) {
  if (!obs_rules_apply(ctx.lexed->path)) return;
  const auto& toks = ctx.lexed->tokens;

  static const std::unordered_set<std::string> instruments = {
      "counter", "gauge", "histogram"};

  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& tok = toks[i];
    if (tok.kind != TokKind::Identifier) continue;

    // registry.counter("name") / Registry::instance().histogram("name")
    if (instruments.count(tok.text) != 0) {
      const Token* prev = prev_token(toks, i);
      if (!is_punct(prev, ".") && !is_punct(prev, "->")) continue;
      if (!is_punct(next_token(toks, i), "(")) continue;
      const Token* arg = i + 2 < toks.size() ? &toks[i + 2] : nullptr;
      if (arg == nullptr || is_punct(arg, ")")) continue;
      if (arg->kind != TokKind::String) {
        ctx.report("obs.name-literal", tok.line,
                   "'" + tok.text +
                       "(...)' name is computed at runtime; exporters and "
                       "CI greps need a statically enumerable name set");
        continue;
      }
      if (!valid_metric_name(arg->text)) {
        ctx.report("obs.name-format", arg->line,
                   "telemetry name \"" + arg->text +
                       "\" is not dotted.lowercase (expected at least two "
                       "[a-z0-9_-] segments joined by '.')");
      }
      if (!ctx.suppressed("obs.name-collision", tok.line)) {
        registrations.push_back(
            ObsRegistration{arg->text, tok.text, ctx.lexed->path, tok.line});
      }
      continue;
    }

    // obs::Span span("name", "category") / obs::Span("name", ...)
    if (tok.text == "Span") {
      std::size_t open = 0;
      const Token* next = next_token(toks, i);
      if (is_punct(next, "(")) {
        open = i + 1;
      } else if (next != nullptr && next->kind == TokKind::Identifier &&
                 is_punct(i + 2 < toks.size() ? &toks[i + 2] : nullptr,
                          "(")) {
        open = i + 2;
      } else {
        continue;  // declaration, reference, or something else
      }
      const Token* arg = open + 1 < toks.size() ? &toks[open + 1] : nullptr;
      if (arg == nullptr || is_punct(arg, ")")) continue;
      if (arg->kind != TokKind::String) {
        ctx.report("obs.name-literal", tok.line,
                   "Span name is computed at runtime; trace consumers need "
                   "a statically enumerable span set");
      } else if (!valid_span_name(arg->text)) {
        ctx.report("obs.name-format", arg->line,
                   "span name \"" + arg->text +
                       "\" is not lowercase (allowed: [a-z0-9_.:-], "
                       "starting with a letter)");
      }
    }
  }
}

void check_obs_collisions(const std::vector<ObsRegistration>& registrations,
                          const std::map<std::string, Severity>& overrides,
                          LintResult& result) {
  std::map<std::string, const ObsRegistration*> first_kind;
  for (const ObsRegistration& reg : registrations) {
    auto [it, inserted] = first_kind.emplace(reg.name, &reg);
    if (inserted || it->second->kind == reg.kind) continue;
    result.findings.push_back(Finding{
        reg.file, reg.line, "obs.name-collision",
        severity_of("obs.name-collision", overrides),
        "telemetry name \"" + reg.name + "\" registered as a " + reg.kind +
            " here but as a " + it->second->kind + " at " +
            it->second->file + ":" + std::to_string(it->second->line),
        false});
  }
}

// --- cache-key completeness -------------------------------------------

struct StructDef {
  std::string name;  // unqualified
  std::string file;
  int line = 0;
  std::vector<std::string> fields;
};

/// Harvest non-static data member names of `struct Name { ... };`
/// definitions (tokenizer-level field extraction; member functions,
/// using/typedef/static/nested-type statements are skipped).
void collect_struct_defs(const LexedFile& lexed,
                         std::vector<StructDef>& defs) {
  const auto& toks = lexed.tokens;
  for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
    if (!is_ident(&toks[i], "struct") && !is_ident(&toks[i], "class")) {
      continue;
    }
    if (toks[i + 1].kind != TokKind::Identifier) continue;
    // Find the opening brace: either immediately or after a base-clause.
    std::size_t open = i + 2;
    while (open < toks.size() && !is_punct(&toks[open], "{") &&
           !is_punct(&toks[open], ";")) {
      ++open;
    }
    if (open >= toks.size() || is_punct(&toks[open], ";")) continue;

    StructDef def;
    def.name = toks[i + 1].text;
    def.file = lexed.path;
    def.line = toks[i + 1].line;

    int depth = 1;
    std::size_t j = open + 1;
    while (j < toks.size() && depth > 0) {
      // One statement at class scope.
      std::vector<const Token*> stmt;
      bool has_paren = false;
      bool done = false;
      while (j < toks.size() && !done) {
        const Token& t = toks[j];
        if (is_punct(&t, "}")) {
          --depth;
          ++j;
          done = true;
          break;
        }
        if (is_punct(&t, "{")) {
          if (has_paren) {
            // Member function body: skip it entirely.
            int inner = 1;
            ++j;
            while (j < toks.size() && inner > 0) {
              if (is_punct(&toks[j], "{")) ++inner;
              if (is_punct(&toks[j], "}")) --inner;
              ++j;
            }
            // Optional trailing ';' after the body.
            if (j < toks.size() && is_punct(&toks[j], ";")) ++j;
            stmt.clear();
            has_paren = false;
            continue;
          }
          // Brace initializer: consume it as part of the statement.
          int inner = 1;
          ++j;
          while (j < toks.size() && inner > 0) {
            if (is_punct(&toks[j], "{")) ++inner;
            if (is_punct(&toks[j], "}")) --inner;
            ++j;
          }
          continue;
        }
        if (is_punct(&t, "(")) has_paren = true;
        if (is_punct(&t, ";")) {
          ++j;
          break;
        }
        stmt.push_back(&t);
        ++j;
      }
      if (done) break;
      if (stmt.empty() || has_paren) continue;
      static const std::unordered_set<std::string> non_field_starters = {
          "using",  "typedef", "static", "friend",  "enum",
          "struct", "class",   "public", "private", "protected"};
      if (stmt.front()->kind == TokKind::Identifier &&
          non_field_starters.count(stmt.front()->text) != 0) {
        continue;
      }
      // Field name: last identifier before '=', '[' or end-of-statement.
      const Token* name = nullptr;
      for (const Token* t : stmt) {
        if (is_punct(t, "=") || is_punct(t, "[")) break;
        if (t->kind == TokKind::Identifier) name = t;
      }
      if (name != nullptr && stmt.size() >= 2) def.fields.push_back(name->text);
    }
    if (!def.fields.empty()) defs.push_back(def);
  }
}

std::string last_component(const std::string& qualified) {
  const std::size_t pos = qualified.rfind("::");
  return pos == std::string::npos ? qualified : qualified.substr(pos + 2);
}

}  // namespace

namespace internal {

void collect_fn_regions(const LexedFile& lexed, std::vector<FnRegion>& out) {
  static const std::unordered_set<std::string> control = {
      "if",     "for",    "while",   "switch",       "catch",
      "return", "sizeof", "alignof", "static_assert"};
  const auto& toks = lexed.tokens;
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    if (toks[i].kind != TokKind::Identifier ||
        control.count(toks[i].text) != 0 || !is_punct(&toks[i + 1], "(")) {
      continue;
    }
    std::size_t close = i + 1;
    int depth = 0;
    while (close < toks.size()) {
      if (is_punct(&toks[close], "(")) ++depth;
      if (is_punct(&toks[close], ")") && --depth == 0) break;
      ++close;
    }
    if (close >= toks.size()) break;
    // Between ')' and '{' only trailing-return / qualifier tokens may
    // appear; anything else means this was not a function definition.
    std::size_t open = close + 1;
    bool is_fn = false;
    while (open < toks.size()) {
      const Token& t = toks[open];
      if (is_punct(&t, "{")) {
        is_fn = true;
        break;
      }
      const bool qualifier =
          t.kind == TokKind::Identifier || is_punct(&t, "->") ||
          is_punct(&t, "::") || is_punct(&t, "<") || is_punct(&t, ">") ||
          is_punct(&t, "&") || is_punct(&t, "*");
      if (!qualifier) break;
      ++open;
    }
    if (!is_fn) continue;
    std::size_t end = open;
    depth = 0;
    while (end < toks.size()) {
      if (is_punct(&toks[end], "{")) ++depth;
      if (is_punct(&toks[end], "}") && --depth == 0) {
        ++end;
        break;
      }
      ++end;
    }
    out.push_back(FnRegion{i + 2, close, open, end});
  }
}

}  // namespace internal

namespace {

/// True when the parameter whose type name sits at token `name_idx` is
/// const-qualified: walking left over type tokens (identifiers, '::',
/// '<', '>') inside the parameter list reaches a `const` before the
/// parameter boundary (',' or '('). Key functions read their spec by
/// const reference; mutable references (`Fnv1a& hash`, internal state)
/// are not the struct being keyed.
bool const_qualified_param(const std::vector<Token>& toks,
                           std::size_t name_idx, std::size_t params_begin) {
  for (std::size_t i = name_idx; i-- > params_begin;) {
    const Token& t = toks[i];
    if (is_ident(&t, "const")) return true;
    const bool type_token = t.kind == TokKind::Identifier ||
                            is_punct(&t, "::") || is_punct(&t, "<") ||
                            is_punct(&t, ">");
    if (!type_token) return false;
  }
  return false;
}

/// True when the region's body reads at least one field of `def`
/// through '.' or '->' (member access or designated initializer).
bool body_accesses_field(const std::vector<Token>& toks,
                         const FnRegion& region, const StructDef& def) {
  for (std::size_t i = region.body_begin; i + 1 < region.body_end; ++i) {
    if (!is_punct(&toks[i], ".") && !is_punct(&toks[i], "->")) continue;
    const Token& next = toks[i + 1];
    if (next.kind != TokKind::Identifier) continue;
    for (const std::string& field : def.fields) {
      if (next.text == field) return true;
    }
  }
  return false;
}

void check_cache_keys(const std::vector<LexedFile>& lexed,
                      const std::map<std::string, Severity>& overrides,
                      LintResult& result) {
  std::vector<StructDef> defs;
  for (const LexedFile& file : lexed) collect_struct_defs(file, defs);

  auto find_def = [&defs](const std::string& name) -> const StructDef* {
    const std::string want = last_component(name);
    for (const StructDef& def : defs) {
      if (def.name == want) return &def;
    }
    return nullptr;
  };

  std::set<std::string> annotated;  // unqualified names seen in key-for()

  for (const LexedFile& file : lexed) {
    for (const auto& [line, names] : file.key_for) {
      // The annotation attaches to the next function body in the file.
      std::size_t body_start = file.tokens.size();
      for (std::size_t i = 0; i < file.tokens.size(); ++i) {
        if (file.tokens[i].line >= line &&
            is_punct(&file.tokens[i], "{")) {
          body_start = i;
          break;
        }
      }
      std::set<std::string> body_idents;
      int depth = 0;
      for (std::size_t i = body_start; i < file.tokens.size(); ++i) {
        if (is_punct(&file.tokens[i], "{")) ++depth;
        if (is_punct(&file.tokens[i], "}") && --depth == 0) break;
        if (file.tokens[i].kind == TokKind::Identifier) {
          body_idents.insert(file.tokens[i].text);
        }
      }
      for (const std::string& name : names) {
        annotated.insert(last_component(name));
        const StructDef* def = find_def(name);
        if (def == nullptr) {
          result.findings.push_back(
              Finding{file.path, line, "cache-key.missing-field",
                      severity_of("cache-key.missing-field", overrides),
                      "key-for(" + name +
                          "): no struct definition with that name in the "
                          "scanned tree",
                      false});
          continue;
        }
        for (const std::string& field : def->fields) {
          if (body_idents.count(field) != 0) continue;
          result.findings.push_back(
              Finding{file.path, line, "cache-key.missing-field",
                      severity_of("cache-key.missing-field", overrides),
                      "field '" + field + "' of " + name + " (" + def->file +
                          ":" + std::to_string(def->line) +
                          ") is never fed to this key function; a config "
                          "change in that field would reuse stale artifacts",
                      false});
        }
      }
    }
  }

  // Auto-discover spec structs instead of curating a list: any struct a
  // content-key function hashes is one whose fields select cached
  // artifacts. A key function is recognized by shape — a function that
  // mentions Fnv1a, takes the struct by const reference (or value), and
  // reads at least one of its fields — so a newly added spec struct is
  // flagged the moment its hash function lands, with no lint edit.
  std::map<std::string, const StructDef*> discovered;  // name -> first def
  for (const LexedFile& file : lexed) {
    std::vector<FnRegion> regions;
    collect_fn_regions(file, regions);
    const auto& toks = file.tokens;
    for (const FnRegion& region : regions) {
      bool uses_hash = false;
      for (std::size_t i = region.params_begin;
           i < region.body_end && !uses_hash; ++i) {
        uses_hash = is_ident(&toks[i], "Fnv1a");
      }
      if (!uses_hash) continue;
      for (std::size_t i = region.params_begin; i < region.params_end; ++i) {
        if (toks[i].kind != TokKind::Identifier) continue;
        const StructDef* def = find_def(toks[i].text);
        if (def == nullptr) continue;
        if (!const_qualified_param(toks, i, region.params_begin)) continue;
        if (!body_accesses_field(toks, region, *def)) continue;
        discovered.emplace(def->name, def);
      }
    }
  }

  std::map<std::string, const LexedFile*> files_by_path;
  for (const LexedFile& file : lexed) {
    files_by_path.emplace(file.path, &file);
  }
  // Corpus-wide findings bypass FileContext, so honor inline allow()
  // directives at the definition site here: a struct whose key is
  // deliberately partial (e.g. lint::Finding's baseline fingerprint)
  // documents that with an allow instead of a bogus key-for.
  for (const auto& [name, def] : discovered) {
    if (annotated.count(name) != 0) continue;
    if (allowed_at(files_by_path, "cache-key.uncovered-struct", def->file,
                   def->line)) {
      ++result.suppressed;
      continue;
    }
    result.findings.push_back(
        Finding{def->file, def->line, "cache-key.uncovered-struct",
                severity_of("cache-key.uncovered-struct", overrides),
                "spec struct " + name +
                    " is hashed into a content key but no key function "
                    "is annotated with `msim-lint: key-for(" +
                    name + ")`",
                false});
  }
}

// --- banned unsafe APIs -----------------------------------------------

void check_banned_functions(FileContext& ctx) {
  const auto& toks = ctx.lexed->tokens;
  struct Banned {
    const char* name;
    const char* hint;
  };
  static const Banned banned[] = {
      {"strtok", "not reentrant; use strtok_r or a hand-rolled splitter"},
      {"gets", "unbounded write; use fgets"},
      {"sprintf", "unbounded write; use snprintf"},
      {"vsprintf", "unbounded write; use vsnprintf"},
      {"gmtime", "returns a shared static; use gmtime_r"},
      {"localtime", "returns a shared static; use localtime_r"},
      {"asctime", "returns a shared static; use strftime"},
      {"ctime", "returns a shared static; use strftime"},
      {"tmpnam", "racy; use mkstemp"},
      {"mktemp", "racy; use mkstemp"},
  };
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& tok = toks[i];
    if (tok.kind != TokKind::Identifier) continue;
    if (!is_punct(next_token(toks, i), "(")) continue;
    if (is_member_or_foreign_qualified(toks, i)) continue;
    for (const Banned& b : banned) {
      if (tok.text == b.name) {
        ctx.report("unsafe.banned-function", tok.line,
                   "'" + tok.text + "()' is banned: " + b.hint);
        break;
      }
    }
  }
}

}  // namespace

// --- public surface ---------------------------------------------------

const char* to_string(Severity severity) {
  return severity == Severity::Error ? "error" : "warning";
}

const std::vector<RuleInfo>& all_rules() { return rule_registry(); }

int LintResult::active_errors() const {
  int count = 0;
  for (const Finding& f : findings) {
    if (f.severity == Severity::Error && !f.baselined) ++count;
  }
  return count;
}

int LintResult::active_warnings() const {
  int count = 0;
  for (const Finding& f : findings) {
    if (f.severity == Severity::Warning && !f.baselined) ++count;
  }
  return count;
}

LintResult run_rules(const std::vector<SourceFile>& files,
                     const std::map<std::string, Severity>& overrides,
                     const RepoInputs* inputs) {
  // The repo model: every file lexed once (token streams, include graph,
  // directive facts), indexed by path. Per-file token rules and the
  // cross-file passes all consume this single model.
  LintResult result;
  std::vector<LexedFile> lexed;
  lexed.reserve(files.size());
  for (const SourceFile& file : files) lexed.push_back(lex(file));
  std::map<std::string, const LexedFile*> files_by_path_model;
  for (const LexedFile& file : lexed) {
    files_by_path_model.emplace(file.path, &file);
  }

  // Unordered-container declarations per file; a .cpp also tracks the
  // names declared in its same-stem header (class members are declared in
  // the .hpp but iterated in the .cpp).
  std::map<std::string, std::set<std::string>> decls_by_path;
  for (const LexedFile& file : lexed) {
    decls_by_path[file.path] = unordered_decls(file.tokens);
  }
  auto tracked_for = [&decls_by_path](const std::string& path) {
    std::set<std::string> tracked = decls_by_path[path];
    const std::size_t dot = path.rfind('.');
    if (dot != std::string::npos) {
      for (const char* ext : {".hpp", ".h"}) {
        auto it = decls_by_path.find(path.substr(0, dot) + ext);
        if (it != decls_by_path.end()) {
          tracked.insert(it->second.begin(), it->second.end());
        }
      }
    }
    return tracked;
  };

  std::vector<ObsRegistration> registrations;
  for (const LexedFile& file : lexed) {
    FileContext ctx{&file, &result, &overrides};
    check_determinism(ctx);
    check_unordered_iteration(ctx, tracked_for(file.path));
    check_stdout(ctx);
    check_obs_names(ctx, registrations);
    check_banned_functions(ctx);
    check_concurrency(ctx);
    check_layering(ctx);
  }
  check_obs_collisions(registrations, overrides, result);
  check_cache_keys(lexed, overrides, result);
  check_protocols(lexed, files_by_path_model, overrides, result);
  check_env_knobs(lexed, files_by_path_model, inputs, overrides, result);

  std::sort(result.findings.begin(), result.findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              if (a.rule != b.rule) return a.rule < b.rule;
              return a.message < b.message;
            });
  return result;
}

}  // namespace msim::lint
