// msim-lint — self-hosted static analysis for the msim tree.
//
// The paper's methodology only works because every prediction is exactly
// reproducible: Eq-2 errors come from deterministic convolutions, and CI
// proves it dynamically by byte-diffing stdout across thread counts and
// cache states. This tool turns the invariants those jobs test *after*
// the fact into build-time checks:
//
//   determinism.*   no wall clocks, no ambient randomness, no iteration
//                   over hash-ordered containers in library code
//   cache-key.*     every field of an annotated spec struct must be fed
//                   to its FNV-1a content-key function
//   stdout.*        library code never writes to stdout; bench/tool
//                   diagnostics go to stderr (stdout is a table stream)
//   obs.*           telemetry names are dotted.lowercase string literals,
//                   one instrument kind per name
//   unsafe.*        banned non-reentrant / unbounded C APIs
//   proto.*         JSON wire keys cross-checked between annotated
//                   writer and reader sides of each hand-rolled protocol
//   env.*           every MSIM_* knob flows through common/parse and is
//                   listed (and documented) in env_registry.txt
//   conc.*          RAII-only locking, paired flock, no detached
//                   threads, annotated mutable statics
//   layer.*         the include graph respects the DESIGN.md layer DAG
//
// Deliberately *not* a compiler: a lightweight tokenizer over the repo's
// own sources (no libclang), so it builds everywhere the tree builds and
// runs in milliseconds. After lexing, the engine builds a repo model —
// per-file token streams, the quoted-include graph, and annotation facts
// (`proto`, `guarded-by`, `key-for`) — that the cross-file passes
// consume. Findings can be suppressed inline with an `allow` directive
// (same line or the line above; syntax in docs/LINT.md) or grandfathered
// in a checked-in baseline file; generic C++ hygiene is clang-tidy's job
// (see .clang-tidy), not ours.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace msim::lint {

// --- findings ---------------------------------------------------------

enum class Severity { Error, Warning };

[[nodiscard]] const char* to_string(Severity severity);

// fingerprint() keys findings for the baseline on (rule, file, message)
// only — line numbers shift, severity/baselined are mutable state — so
// the cache-key completeness contract does not apply.
// msim-lint: allow(cache-key.uncovered-struct)
struct Finding {
  std::string file;  ///< repo-relative, forward slashes
  int line = 0;
  std::string rule;
  Severity severity = Severity::Error;
  std::string message;
  bool baselined = false;
};

/// A rule's identity card (id, default severity, one-line description).
struct RuleInfo {
  std::string id;
  Severity severity = Severity::Error;
  std::string description;
};

/// Every rule the engine implements, in stable (documentation) order.
[[nodiscard]] const std::vector<RuleInfo>& all_rules();

// --- tokenizer --------------------------------------------------------

enum class TokKind { Identifier, Number, String, CharLit, Punct };

struct Token {
  TokKind kind = TokKind::Punct;
  std::string text;  ///< for String: the *unquoted* literal body
  int line = 0;
};

struct SourceFile {
  std::string path;  ///< repo-relative, forward slashes
  std::string text;
};

/// One `#include "..."` dependency (quoted form only; angle includes are
/// system headers and carry no layering information).
struct IncludeDecl {
  std::string path;  ///< the include operand, verbatim
  int line = 0;
};

/// One `proto(<name>, writer|reader)` annotation; attaches to the next
/// function body in the file, like `key-for`.
struct ProtoMark {
  std::string name;
  std::string side;  ///< "writer" or "reader"
  int line = 0;
};

/// Tokenized translation unit: comments and preprocessor directives are
/// stripped, but `msim-lint:` directives found in comments (including
/// trailing comments on preprocessor lines) are kept, and quoted
/// includes are harvested for the layer-DAG pass.
struct LexedFile {
  std::string path;
  std::vector<Token> tokens;
  /// line -> rules allowed on that line (from inline `allow` directives;
  /// a directive covers its own line and the next line).
  std::map<int, std::vector<std::string>> allows;
  /// line -> struct names named by inline `key-for` annotations; each
  /// attaches to the next function body in the file.
  std::map<int, std::vector<std::string>> key_for;
  /// line -> mutex names named by inline `guarded-by` annotations; each
  /// covers a mutable-static declaration on its own or the next line.
  std::map<int, std::vector<std::string>> guarded_by;
  /// `proto` annotations in file order.
  std::vector<ProtoMark> protos;
  /// Quoted `#include "..."` dependencies in file order.
  std::vector<IncludeDecl> includes;
};

[[nodiscard]] LexedFile lex(const SourceFile& file);

// --- repo inputs (non-source facts the cross-file passes consume) ------

/// One row of tools/msim_lint/env_registry.txt: the machine-readable
/// inventory of MSIM_* environment knobs.
struct EnvKnob {
  std::string name;      ///< MSIM_*
  std::string parser;    ///< unsigned | u64 | double | bool | bytes | string
  std::string fallback;  ///< human-readable default ("-" when empty)
  std::string doc;       ///< repo-relative doc file that describes the knob
  int line = 0;          ///< registry line, for diagnostics
};

/// Parse the registry text (`name parser default doc` per line, `#`
/// comments); malformed rows are skipped.
[[nodiscard]] std::vector<EnvKnob> parse_env_registry(const std::string& text);

/// The registry as a markdown table (the README "Environment knobs"
/// section is generated from this via `msim-lint --dump-env-registry`).
[[nodiscard]] std::string render_env_registry_markdown(
    const std::vector<EnvKnob>& knobs);

/// Non-source inputs for the cross-file passes: the env-knob registry
/// and the doc files it anchors knobs to.
struct RepoInputs {
  std::string env_registry;                 ///< env_registry.txt text
  std::map<std::string, std::string> docs;  ///< repo-relative path -> text
};

/// Load `tools/msim_lint/env_registry.txt`, `README.md` and `docs/*.md`
/// from the repo root (missing files load as absent, not errors).
[[nodiscard]] RepoInputs load_repo_inputs(const std::string& root);

// --- engine -----------------------------------------------------------

struct LintResult {
  std::vector<Finding> findings;  ///< suppressed findings are not included
  int suppressed = 0;

  [[nodiscard]] int active_errors() const;
  [[nodiscard]] int active_warnings() const;
};

/// Run every rule over the given files. `severity_overrides` maps rule id
/// to a severity replacing the built-in default. `inputs` supplies the
/// env-knob registry and doc texts; when null the env-registry and doc
/// diffing checks run against an empty registry (every knob unregistered)
/// — callers linting a real tree should pass `load_repo_inputs(root)`.
[[nodiscard]] LintResult run_rules(
    const std::vector<SourceFile>& files,
    const std::map<std::string, Severity>& severity_overrides = {},
    const RepoInputs* inputs = nullptr);

/// Collect the lintable sources (`.cpp` / `.hpp` / `.h`) under the
/// standard roots (src/ bench/ tools/ tests/), sorted by path so output
/// is deterministic. Build trees and fixture corpora are skipped.
[[nodiscard]] std::vector<SourceFile> collect_tree(const std::string& root);

// --- baseline ---------------------------------------------------------

/// Stable fingerprint of a finding: FNV-1a over (rule, file, message) —
/// line numbers excluded so unrelated edits don't invalidate the entry.
[[nodiscard]] std::string fingerprint(const Finding& finding);

/// fingerprint -> grandfathered occurrence count.
using Baseline = std::map<std::string, int>;

[[nodiscard]] Baseline parse_baseline(const std::string& text);
[[nodiscard]] std::string render_baseline(const std::vector<Finding>& findings);

/// Mark findings matched by the baseline (up to the stored count per
/// fingerprint) as `baselined`; they no longer fail the run.
void apply_baseline(LintResult& result, const Baseline& baseline);

// --- reporting --------------------------------------------------------

/// `file:line: severity [rule] message` diagnostics, one per line,
/// baselined findings annotated. Sorted by (file, line, rule).
[[nodiscard]] std::string render_diagnostics(const LintResult& result);

/// Per-rule summary table (errors / warnings / baselined) plus totals.
[[nodiscard]] std::string render_summary(const LintResult& result);

/// The findings as a JSON array (`--format=json`, uploaded as a CI
/// artifact): one object per finding with file/line/rule/severity/
/// message/baselined members, sorted like render_diagnostics.
[[nodiscard]] std::string render_findings_json(const LintResult& result);

}  // namespace msim::lint
