// msim-lint CLI. Walks src/ bench/ tools/ tests/, runs every rule, and
// prints `file:line: severity [rule] message` diagnostics plus a per-rule
// summary table. Exit status: 0 when every error is baselined or fixed,
// 1 on non-baselined errors, 2 on usage/IO problems.
//
// Diagnostics and the summary go to stdout (they ARE this tool's table
// stream); usage errors go to stderr.
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "msim_lint/lint.hpp"

namespace {

namespace fs = std::filesystem;
using namespace msim::lint;

int usage(const char* error) {
  if (error != nullptr) std::fprintf(stderr, "error: %s\n\n", error);
  std::fprintf(
      stderr,
      "msim-lint — determinism / cache-key / output-discipline checks\n\n"
      "usage: msim-lint [options]\n\n"
      "options:\n"
      "  --root DIR            repo root to scan (default: .)\n"
      "  --baseline FILE       baseline file (default: "
      "<root>/tools/msim_lint/baseline.txt)\n"
      "  --no-baseline         ignore the baseline (report everything)\n"
      "  --write-baseline      rewrite the baseline from current findings "
      "and exit 0\n"
      "  --severity RULE=LEVEL override a rule's severity (error|warning)\n"
      "  --format=json         print findings as a JSON array (for CI "
      "artifacts)\n"
      "  --dump-env-registry   print the env-knob registry as a markdown "
      "table and exit\n"
      "  --list-rules          print every rule with its default severity\n"
      "  --quiet               print only the summary and failures\n");
  return error != nullptr ? 2 : 0;
}

std::string read_file(const std::string& path, bool* ok) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    *ok = false;
    return {};
  }
  std::ostringstream text;
  text << in.rdbuf();
  *ok = true;
  return text.str();
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  std::string baseline_path;
  bool use_baseline = true;
  bool write_baseline = false;
  bool quiet = false;
  bool json = false;
  bool dump_registry = false;
  std::map<std::string, Severity> overrides;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root" && i + 1 < argc) {
      root = argv[++i];
    } else if (arg == "--baseline" && i + 1 < argc) {
      baseline_path = argv[++i];
    } else if (arg == "--no-baseline") {
      use_baseline = false;
    } else if (arg == "--write-baseline") {
      write_baseline = true;
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--format=json") {
      json = true;
    } else if (arg == "--format" && i + 1 < argc) {
      const std::string format = argv[++i];
      if (format != "json" && format != "text") {
        return usage("--format must be 'json' or 'text'");
      }
      json = format == "json";
    } else if (arg == "--dump-env-registry") {
      dump_registry = true;
    } else if (arg == "--severity" && i + 1 < argc) {
      const std::string spec = argv[++i];
      const std::size_t eq = spec.find('=');
      if (eq == std::string::npos) {
        return usage("--severity expects RULE=error|warning");
      }
      const std::string level = spec.substr(eq + 1);
      if (level != "error" && level != "warning") {
        return usage("--severity level must be 'error' or 'warning'");
      }
      overrides[spec.substr(0, eq)] =
          level == "error" ? Severity::Error : Severity::Warning;
    } else if (arg == "--list-rules") {
      for (const RuleInfo& rule : all_rules()) {
        std::printf("%-36s %-8s %s\n", rule.id.c_str(),
                    to_string(rule.severity), rule.description.c_str());
      }
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      return usage(nullptr);
    } else {
      return usage(("unknown argument '" + arg + "'").c_str());
    }
  }

  if (!fs::is_directory(fs::path(root) / "src")) {
    return usage(("'" + root + "' does not look like the repo root "
                  "(no src/ directory); pass --root").c_str());
  }
  if (baseline_path.empty()) {
    baseline_path =
        (fs::path(root) / "tools" / "msim_lint" / "baseline.txt").string();
  }

  const RepoInputs inputs = load_repo_inputs(root);
  if (dump_registry) {
    std::printf("%s", render_env_registry_markdown(
                          parse_env_registry(inputs.env_registry))
                          .c_str());
    return 0;
  }

  const std::vector<SourceFile> files = collect_tree(root);
  if (files.empty()) return usage("no lintable sources found under --root");
  LintResult result = run_rules(files, overrides, &inputs);

  if (write_baseline) {
    std::ofstream out(baseline_path, std::ios::binary);
    if (!out) {
      std::fprintf(stderr, "error: cannot write %s\n",
                   baseline_path.c_str());
      return 2;
    }
    out << render_baseline(result.findings);
    std::printf("wrote %zu finding(s) to %s\n", result.findings.size(),
                baseline_path.c_str());
    return 0;
  }

  if (use_baseline) {
    bool ok = false;
    const std::string text = read_file(baseline_path, &ok);
    if (ok) apply_baseline(result, parse_baseline(text));
  }

  if (json) {
    std::printf("%s", render_findings_json(result).c_str());
    return result.active_errors() > 0 ? 1 : 0;
  }

  if (!quiet) {
    std::printf("%s", render_diagnostics(result).c_str());
  } else {
    for (const Finding& finding : result.findings) {
      if (finding.baselined) continue;
      std::printf("%s:%d: %s [%s] %s\n", finding.file.c_str(), finding.line,
                  to_string(finding.severity), finding.rule.c_str(),
                  finding.message.c_str());
    }
  }
  std::printf("\n%s", render_summary(result).c_str());
  std::printf("checked %zu files: %d error(s), %d warning(s)\n",
              files.size(), result.active_errors(),
              result.active_warnings());
  return result.active_errors() > 0 ? 1 : 0;
}
