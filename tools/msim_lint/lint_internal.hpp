// Shared internals of the msim-lint rule engine: path scoping, the
// per-file reporting context, token-pattern helpers and function-region
// discovery. lint_rules.cpp (per-file token rules + the classic
// cross-file passes) and lint_passes.cpp (the whole-repo semantic
// passes: proto / env / conc / layer) both build on these, so the two
// layers cannot drift on suppression or severity semantics.
#pragma once

#include <cstddef>
#include <unordered_set>

#include "msim_lint/lint.hpp"

namespace msim::lint::internal {

// --- scoping ----------------------------------------------------------

inline bool starts_with(const std::string& s, const std::string& prefix) {
  return s.rfind(prefix, 0) == 0;
}

/// Library sources whose results feed artifacts and tables.
inline bool in_library(const std::string& path) {
  return starts_with(path, "src/");
}

/// Directories exempt from the determinism rules: the RNG wrapper is
/// where seeded randomness legitimately lives, and the telemetry layer
/// measures wall time by design (its output never feeds results).
inline bool determinism_exempt(const std::string& path) {
  return starts_with(path, "src/obs/") || starts_with(path, "src/common/rng");
}

inline bool in_bench_or_tools(const std::string& path) {
  return starts_with(path, "bench/") || starts_with(path, "tools/");
}

/// Resolve a rule's severity: explicit override, else registry default.
[[nodiscard]] Severity severity_of(
    const std::string& rule, const std::map<std::string, Severity>& overrides);

// --- per-file matching context ----------------------------------------

struct FileContext {
  const LexedFile* lexed = nullptr;
  LintResult* result = nullptr;
  const std::map<std::string, Severity>* overrides = nullptr;

  [[nodiscard]] bool suppressed(const std::string& rule, int line) const {
    for (int l : {line, line - 1}) {
      auto it = lexed->allows.find(l);
      if (it == lexed->allows.end()) continue;
      for (const std::string& allowed : it->second) {
        if (allowed == rule) return true;
      }
    }
    return false;
  }

  void report(const std::string& rule, int line, std::string message) {
    if (suppressed(rule, line)) {
      ++result->suppressed;
      return;
    }
    result->findings.push_back(Finding{lexed->path, line, rule,
                                       severity_of(rule, *overrides),
                                       std::move(message), false});
  }
};

// --- token helpers ----------------------------------------------------

inline const Token* prev_token(const std::vector<Token>& toks,
                               std::size_t i) {
  return i > 0 ? &toks[i - 1] : nullptr;
}

inline const Token* next_token(const std::vector<Token>& toks,
                               std::size_t i) {
  return i + 1 < toks.size() ? &toks[i + 1] : nullptr;
}

inline bool is_punct(const Token* t, const char* text) {
  return t != nullptr && t->kind == TokKind::Punct && t->text == text;
}

inline bool is_ident(const Token* t, const char* text) {
  return t != nullptr && t->kind == TokKind::Identifier && t->text == text;
}

/// True when the call at token i (an identifier) is a member access
/// (`x.f(` / `x->f(`) or a qualified name whose qualifier is not `std`
/// (`other::f(`) — those are never the global C function we banned.
inline bool is_member_or_foreign_qualified(const std::vector<Token>& toks,
                                           std::size_t i) {
  const Token* prev = prev_token(toks, i);
  if (is_punct(prev, ".") || is_punct(prev, "->")) return true;
  if (is_punct(prev, "::")) {
    const Token* qualifier = i >= 2 ? &toks[i - 2] : nullptr;
    return !is_ident(qualifier, "std");
  }
  return false;
}

// --- function regions -------------------------------------------------

/// A function-like token region: `name ( params ) [qualifiers] { body }`.
/// Token indices into the owning file's stream.
struct FnRegion {
  std::size_t params_begin = 0;  ///< first token after '('
  std::size_t params_end = 0;    ///< index of the closing ')'
  std::size_t body_begin = 0;    ///< index of the opening '{'
  std::size_t body_end = 0;      ///< one past the matching '}'
};

/// Find function definitions at tokenizer level. Control-flow headers
/// (`if (...) {`) are excluded by keyword; call expressions and plain
/// declarations die on the ';' / ',' between ')' and '{'; constructors
/// with member-init lists are missed (the ':' breaks the scan), which is
/// fine — key functions are free functions by repo convention.
void collect_fn_regions(const LexedFile& lexed, std::vector<FnRegion>& out);

// --- cross-file suppression -------------------------------------------

/// Corpus-wide passes report findings outside any single FileContext;
/// this honors inline allow() directives at the finding site the same
/// way (own line or the line above).
inline bool allowed_at(
    const std::map<std::string, const LexedFile*>& files_by_path,
    const std::string& rule, const std::string& path, int line) {
  const auto it = files_by_path.find(path);
  if (it == files_by_path.end()) return false;
  for (int l : {line, line - 1}) {
    const auto allows = it->second->allows.find(l);
    if (allows == it->second->allows.end()) continue;
    for (const std::string& allowed : allows->second) {
      if (allowed == rule) return true;
    }
  }
  return false;
}

// --- whole-repo semantic passes (lint_passes.cpp) ---------------------

/// Protocol-schema drift: cross-reference JSON keys between annotated
/// `proto(name, writer)` and `proto(name, reader)` function regions.
void check_protocols(const std::vector<LexedFile>& lexed,
                     const std::map<std::string, const LexedFile*>& by_path,
                     const std::map<std::string, Severity>& overrides,
                     LintResult& result);

/// Env-knob discipline: raw getenv bans, registry membership, parser
/// agreement, doc anchoring and stale-row detection.
void check_env_knobs(const std::vector<LexedFile>& lexed,
                     const std::map<std::string, const LexedFile*>& by_path,
                     const RepoInputs* inputs,
                     const std::map<std::string, Severity>& overrides,
                     LintResult& result);

/// Concurrency discipline over one file: raw lock()/unlock(), unpaired
/// flock, detached threads, unannotated mutable statics.
void check_concurrency(FileContext& ctx);

/// Layer DAG: quoted includes must never point to a higher-ranked
/// module than the including file's own.
void check_layering(FileContext& ctx);

}  // namespace msim::lint::internal
