// Whole-repo semantic passes for msim-lint (v2): protocol-schema drift,
// env-knob registry discipline, concurrency discipline and the layer
// DAG. Unlike the per-file token rules in lint_rules.cpp these consume
// the repo model — every file's token stream, the quoted-include graph
// and the annotation facts harvested by the lexer — so a writer in
// src/pipeline can be checked against a reader in tests/, and an
// include edge can be checked against the DESIGN.md layering.
#include <cctype>
#include <set>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "msim_lint/lint_internal.hpp"

namespace msim::lint {

namespace internal {

namespace {

bool ident_like(const std::string& text) {
  if (text.empty()) return false;
  if (!(std::isalpha(static_cast<unsigned char>(text[0])) || text[0] == '_')) {
    return false;
  }
  for (const char c : text) {
    if (!(std::isalnum(static_cast<unsigned char>(c)) || c == '_')) {
      return false;
    }
  }
  return true;
}

// --- protocol-schema drift --------------------------------------------

/// Coarse JSON value types; Unknown (spliced expressions, objects,
/// arrays) matches anything. u64s ride as decimal *strings* on every
/// msim wire, so u64_field readers count as String.
enum class JsonType { Unknown, String, Number, Bool };

const char* type_name(JsonType type) {
  switch (type) {
    case JsonType::String: return "string";
    case JsonType::Number: return "number";
    case JsonType::Bool: return "bool";
    default: return "unknown";
  }
}

struct KeyUse {
  const LexedFile* file = nullptr;
  int line = 0;
  JsonType type = JsonType::Unknown;
};

struct ProtoSide {
  std::vector<std::pair<const LexedFile*, const ProtoMark*>> marks;
  std::map<std::string, std::vector<KeyUse>> keys;
};

/// [begin, end) token range of the function body a directive on
/// `mark_line` attaches to: the first '{' at or below the directive,
/// through its matching '}'. Same attachment rule as key-for().
std::pair<std::size_t, std::size_t> region_after(const LexedFile& file,
                                                 int mark_line) {
  const auto& toks = file.tokens;
  std::size_t begin = toks.size();
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].line >= mark_line && is_punct(&toks[i], "{")) {
      begin = i;
      break;
    }
  }
  std::size_t end = begin;
  int depth = 0;
  while (end < toks.size()) {
    if (is_punct(&toks[end], "{")) ++depth;
    if (is_punct(&toks[end], "}") && --depth == 0) {
      ++end;
      break;
    }
    ++end;
  }
  return {begin, end};
}

/// Extract `\"key\":` patterns from one string-literal body (escape
/// sequences are preserved raw by the lexer, so a JSON key literal looks
/// like `{\"id\":` here) along with the value type the literal implies.
void keys_in_literal(const std::string& text, const LexedFile& file, int line,
                     std::map<std::string, std::vector<KeyUse>>& out) {
  std::size_t pos = 0;
  while (pos + 1 < text.size()) {
    if (!(text[pos] == '\\' && text[pos + 1] == '"')) {
      ++pos;
      continue;
    }
    std::size_t q = pos + 2;
    std::string key;
    while (q < text.size() &&
           (std::isalnum(static_cast<unsigned char>(text[q])) ||
            text[q] == '_')) {
      key += text[q++];
    }
    if (key.empty() || !ident_like(key) || q + 3 > text.size() ||
        text.compare(q, 2, "\\\"") != 0 || text[q + 2] != ':') {
      pos = q > pos ? q : pos + 1;
      continue;
    }
    JsonType type = JsonType::Unknown;
    const std::size_t v = q + 3;
    if (v < text.size()) {
      const char c = text[v];
      if (c == '\\' && v + 1 < text.size() && text[v + 1] == '"') {
        type = JsonType::String;
      } else if (std::isdigit(static_cast<unsigned char>(c)) || c == '-') {
        type = JsonType::Number;
      } else if (c == 't' || c == 'f') {
        type = JsonType::Bool;
      }
    }
    out[key].push_back(KeyUse{&file, line, type});
    pos = q + 2;
  }
}

/// First string-literal argument at paren depth 1 of the call whose '('
/// sits at token `open`, or nullptr.
const Token* first_string_arg(const std::vector<Token>& toks,
                              std::size_t open) {
  int depth = 0;
  for (std::size_t j = open; j < toks.size(); ++j) {
    if (is_punct(&toks[j], "(")) {
      ++depth;
      continue;
    }
    if (is_punct(&toks[j], ")") && --depth == 0) break;
    if (depth == 1 && toks[j].kind == TokKind::String) return &toks[j];
  }
  return nullptr;
}

/// Writer-helper callees whose first string argument is a JSON key.
const std::unordered_set<std::string>& writer_helpers() {
  static const std::unordered_set<std::string> helpers = {
      "append_string_member", "member", "record_run_info"};
  return helpers;
}

/// Reader-helper callees (first string argument is the key) and the
/// value type each one implies.
const std::unordered_map<std::string, JsonType>& reader_helpers() {
  static const std::unordered_map<std::string, JsonType> helpers = {
      {"find", JsonType::Unknown},         {"string_or", JsonType::String},
      {"string_field", JsonType::String},  {"u64_field", JsonType::String},
      {"number_or", JsonType::Number},     {"number_field", JsonType::Number},
      {"bool_or", JsonType::Bool},         {"bool_field", JsonType::Bool},
  };
  return helpers;
}

void harvest_proto_region(const LexedFile& file, const ProtoMark& mark,
                          bool writer, ProtoSide& side) {
  const auto [begin, end] = region_after(file, mark.line);
  const auto& toks = file.tokens;
  for (std::size_t i = begin; i < end; ++i) {
    const Token& tok = toks[i];
    if (writer && tok.kind == TokKind::String) {
      keys_in_literal(tok.text, file, tok.line, side.keys);
      continue;
    }
    if (tok.kind != TokKind::Identifier || !is_punct(next_token(toks, i), "(")) {
      continue;
    }
    if (writer) {
      if (writer_helpers().count(tok.text) == 0) continue;
      const Token* arg = first_string_arg(toks, i + 1);
      if (arg != nullptr && ident_like(arg->text)) {
        side.keys[arg->text].push_back(
            KeyUse{&file, arg->line, JsonType::String});
      }
    } else {
      const auto it = reader_helpers().find(tok.text);
      if (it == reader_helpers().end()) continue;
      const Token* arg = first_string_arg(toks, i + 1);
      if (arg != nullptr && ident_like(arg->text)) {
        side.keys[arg->text].push_back(KeyUse{&file, arg->line, it->second});
      }
    }
  }
}

}  // namespace

void check_protocols(const std::vector<LexedFile>& lexed,
                     const std::map<std::string, const LexedFile*>& by_path,
                     const std::map<std::string, Severity>& overrides,
                     LintResult& result) {
  struct ProtoInfo {
    ProtoSide writer;
    ProtoSide reader;
  };
  std::map<std::string, ProtoInfo> protos;
  for (const LexedFile& file : lexed) {
    for (const ProtoMark& mark : file.protos) {
      if (mark.side != "writer" && mark.side != "reader") {
        result.findings.push_back(Finding{
            file.path, mark.line, "proto.one-sided",
            severity_of("proto.one-sided", overrides),
            "proto(" + mark.name + ", " + mark.side +
                "): side must be 'writer' or 'reader'",
            false});
        continue;
      }
      const bool writer = mark.side == "writer";
      ProtoSide& side =
          writer ? protos[mark.name].writer : protos[mark.name].reader;
      side.marks.emplace_back(&file, &mark);
      harvest_proto_region(file, mark, writer, side);
    }
  }

  const auto report = [&](const std::string& rule, const LexedFile* file,
                          int line, std::string message) {
    if (allowed_at(by_path, rule, file->path, line)) {
      ++result.suppressed;
      return;
    }
    result.findings.push_back(Finding{file->path, line, rule,
                                      severity_of(rule, overrides),
                                      std::move(message), false});
  };

  for (const auto& [name, info] : protos) {
    if (info.writer.marks.empty() || info.reader.marks.empty()) {
      const ProtoSide& present =
          info.writer.marks.empty() ? info.reader : info.writer;
      const auto& [file, mark] = present.marks.front();
      report("proto.one-sided", file, mark->line,
             "protocol '" + name + "' has only " + mark->side +
                 " regions; annotate the opposite side with `msim-lint: "
                 "proto(" + name + ", " +
                 (info.writer.marks.empty() ? "writer" : "reader") +
                 ")` so key drift is checkable");
      continue;
    }
    for (const auto& [key, uses] : info.writer.keys) {
      if (info.reader.keys.count(key) != 0) continue;
      const KeyUse& use = uses.front();
      report("proto.unread-key", use.file, use.line,
             "protocol '" + name + "' writes key \"" + key +
                 "\" but no reader region reads it");
    }
    for (const auto& [key, uses] : info.reader.keys) {
      if (info.writer.keys.count(key) != 0) continue;
      const KeyUse& use = uses.front();
      report("proto.unwritten-key", use.file, use.line,
             "protocol '" + name + "' reads key \"" + key +
                 "\" but no writer region writes it");
    }
    for (const auto& [key, writer_uses] : info.writer.keys) {
      const auto reader_it = info.reader.keys.find(key);
      if (reader_it == info.reader.keys.end()) continue;
      const KeyUse* first_concrete = nullptr;
      std::vector<const KeyUse*> all;
      for (const KeyUse& use : writer_uses) all.push_back(&use);
      for (const KeyUse& use : reader_it->second) all.push_back(&use);
      for (const KeyUse* use : all) {
        if (use->type == JsonType::Unknown) continue;
        if (first_concrete == nullptr) {
          first_concrete = use;
          continue;
        }
        if (use->type != first_concrete->type) {
          report("proto.type-mismatch", use->file, use->line,
                 "protocol '" + name + "' key \"" + key + "\" is a " +
                     type_name(first_concrete->type) + " at " +
                     first_concrete->file->path + ":" +
                     std::to_string(first_concrete->line) + " but a " +
                     type_name(use->type) + " here");
          break;
        }
      }
    }
  }
}

// --- env-knob registry ------------------------------------------------

namespace {

constexpr const char* kRegistryPath = "tools/msim_lint/env_registry.txt";

/// env_* helper -> the registry parser column it corresponds to.
const std::unordered_map<std::string, std::string>& env_helper_parsers() {
  static const std::unordered_map<std::string, std::string> helpers = {
      {"env_unsigned", "unsigned"}, {"env_u64", "u64"},
      {"env_double", "double"},     {"env_bool", "bool"},
      {"env_byte_size", "bytes"},   {"env_string", "string"},
  };
  return helpers;
}

}  // namespace

void check_env_knobs(const std::vector<LexedFile>& lexed,
                     const std::map<std::string, const LexedFile*>& by_path,
                     const RepoInputs* inputs,
                     const std::map<std::string, Severity>& overrides,
                     LintResult& result) {
  const std::string registry_text =
      inputs != nullptr ? inputs->env_registry : std::string();
  const std::vector<EnvKnob> registry = parse_env_registry(registry_text);
  std::map<std::string, const EnvKnob*> rows;
  for (const EnvKnob& knob : registry) rows.emplace(knob.name, &knob);

  const auto report = [&](const std::string& rule, const LexedFile* file,
                          int line, std::string message) {
    if (file != nullptr && allowed_at(by_path, rule, file->path, line)) {
      ++result.suppressed;
      return;
    }
    result.findings.push_back(
        Finding{file != nullptr ? file->path : std::string(kRegistryPath),
                line, rule, severity_of(rule, overrides), std::move(message),
                false});
  };

  std::set<std::string> used;  // registry rows seen at a call site
  for (const LexedFile& file : lexed) {
    if (!in_library(file.path) && !in_bench_or_tools(file.path)) continue;
    const auto& toks = file.tokens;
    for (std::size_t i = 0; i < toks.size(); ++i) {
      const Token& tok = toks[i];
      if (tok.kind != TokKind::Identifier) continue;
      if (!is_punct(next_token(toks, i), "(")) continue;

      if (tok.text == "getenv" &&
          !is_member_or_foreign_qualified(toks, i)) {
        // The env_* helpers in common/parse are the one sanctioned
        // getenv site; everything else must go through them.
        if (file.path != "src/common/parse.cpp") {
          const Token* arg = first_string_arg(toks, i + 1);
          report("env.raw-getenv", &file, tok.line,
                 std::string("raw getenv(") +
                     (arg != nullptr ? "\"" + arg->text + "\"" : "...") +
                     ") bypasses the checked env_* helpers in "
                     "common/parse.hpp");
        }
        continue;
      }

      const auto helper = env_helper_parsers().find(tok.text);
      if (helper == env_helper_parsers().end()) continue;
      const Token* arg = first_string_arg(toks, i + 1);
      if (arg == nullptr || !starts_with(arg->text, "MSIM_")) continue;
      used.insert(arg->text);
      const auto row = rows.find(arg->text);
      if (row == rows.end()) {
        report("env.unregistered", &file, arg->line,
               "env knob " + arg->text + " is not listed in " +
                   kRegistryPath +
                   " (add `name parser default doc` there and document "
                   "it)");
        continue;
      }
      // env_string is always acceptable: the run-record identity block
      // captures knobs verbatim next to their parsed uses.
      if (tok.text != "env_string" && helper->second != row->second->parser) {
        report("env.parser-mismatch", &file, arg->line,
               arg->text + " is read with " + tok.text + "() but " +
                   kRegistryPath + ":" +
                   std::to_string(row->second->line) + " declares parser '" +
                   row->second->parser + "'");
      }
    }
  }

  // Registry-side checks need the registry itself; without repo inputs
  // there is nothing to diff.
  if (inputs == nullptr) return;
  for (const EnvKnob& knob : registry) {
    if (env_helper_parsers().count("env_" + knob.parser) == 0 &&
        knob.parser != "unsigned" && knob.parser != "u64" &&
        knob.parser != "double" && knob.parser != "bool" &&
        knob.parser != "bytes" && knob.parser != "string") {
      report("env.parser-mismatch", nullptr, knob.line,
             knob.name + ": unknown parser '" + knob.parser +
                 "' (expected unsigned|u64|double|bool|bytes|string)");
    }
    const auto doc = inputs->docs.find(knob.doc);
    if (doc == inputs->docs.end()) {
      report("env.undocumented", nullptr, knob.line,
             knob.name + ": doc anchor '" + knob.doc +
                 "' was not found in the repo");
    } else if (doc->second.find(knob.name) == std::string::npos) {
      report("env.undocumented", nullptr, knob.line,
             knob.name + " is registered but never mentioned in " +
                 knob.doc);
    }
    if (used.count(knob.name) == 0) {
      report("env.registry-stale", nullptr, knob.line,
             knob.name + " is registered but no scanned source reads it "
                 "through an env_* helper");
    }
  }
}

// --- concurrency discipline -------------------------------------------

namespace {

/// Names declared in this file as scoped lock guards
/// (`std::unique_lock<std::mutex> guard(m)`, CTAD `std::scoped_lock
/// lock(m)`); explicit .lock()/.unlock() on these is sanctioned (e.g.
/// dropping a lock around a blocking wait).
std::set<std::string> guard_decls(const std::vector<Token>& toks) {
  static const std::unordered_set<std::string> guard_types = {
      "unique_lock", "shared_lock", "scoped_lock", "lock_guard"};
  std::set<std::string> names;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != TokKind::Identifier ||
        guard_types.count(toks[i].text) == 0) {
      continue;
    }
    std::size_t j = i + 1;
    if (j < toks.size() && is_punct(&toks[j], "<")) {
      int depth = 0;
      for (; j < toks.size(); ++j) {
        if (is_punct(&toks[j], "<")) ++depth;
        if (is_punct(&toks[j], ">") && --depth == 0) {
          ++j;
          break;
        }
      }
    }
    while (j < toks.size() &&
           (is_punct(&toks[j], "&") || is_punct(&toks[j], "*") ||
            is_ident(&toks[j], "const"))) {
      ++j;
    }
    if (j >= toks.size() || toks[j].kind != TokKind::Identifier) continue;
    const Token* after = next_token(toks, j);
    if (is_punct(after, "(") || is_punct(after, "{") ||
        is_punct(after, "=") || is_punct(after, ";")) {
      names.insert(toks[j].text);
    }
  }
  return names;
}

/// Statement-level scope classification for the mutable-static check.
enum class ScopeKind { Namespace, Type, FuncBody, Init };

bool mutable_static_exempt_token(const std::string& text) {
  static const std::unordered_set<std::string> exempt = {
      "const",       "constexpr",      "thread_local", "atomic",
      "atomic_flag", "mutex",          "shared_mutex", "recursive_mutex",
      "once_flag",   "condition_variable",
      // obs instrument handles resolve once and are internally atomic.
      "Counter",     "Gauge",          "Histogram"};
  return exempt.count(text) != 0;
}

bool mutable_static_skip_leading(const std::string& text) {
  static const std::unordered_set<std::string> skip = {
      "using",  "typedef", "namespace", "template", "extern",
      "friend", "static_assert", "struct", "class", "union", "enum"};
  return skip.count(text) != 0;
}

void check_mutable_statics(FileContext& ctx) {
  const auto& toks = ctx.lexed->tokens;
  std::vector<ScopeKind> scopes = {ScopeKind::Namespace};
  std::vector<const Token*> stmt;

  const auto classify_open = [&](std::size_t i) {
    const Token* prev = prev_token(toks, i);
    if (prev == nullptr || is_ident(prev, "namespace")) {
      return ScopeKind::Namespace;
    }
    if (prev->kind == TokKind::Identifier && i >= 2 &&
        is_ident(&toks[i - 2], "namespace")) {
      return ScopeKind::Namespace;
    }
    // struct/class/enum/union heads: scan back over the head tokens.
    for (std::size_t k = i; k-- > 0;) {
      const Token& t = toks[k];
      if (is_punct(&t, ";") || is_punct(&t, "}") || is_punct(&t, "{") ||
          is_punct(&t, ")")) {
        break;
      }
      if (is_ident(&t, "struct") || is_ident(&t, "class") ||
          is_ident(&t, "union") || is_ident(&t, "enum")) {
        return ScopeKind::Type;
      }
    }
    // `) {` (possibly with trailing-return / qualifier tokens between)
    // is a function body — unless the statement so far contains '=',
    // which makes it a braced initializer on a declaration.
    bool saw_assign = false;
    for (const Token* t : stmt) {
      if (is_punct(t, "=")) saw_assign = true;
    }
    if (!saw_assign) {
      for (std::size_t k = i; k-- > 0;) {
        const Token& t = toks[k];
        if (is_punct(&t, ")")) return ScopeKind::FuncBody;
        const bool qualifier = t.kind == TokKind::Identifier ||
                               is_punct(&t, "->") || is_punct(&t, "::") ||
                               is_punct(&t, "<") || is_punct(&t, ">") ||
                               is_punct(&t, "&") || is_punct(&t, "*");
        if (!qualifier) break;
      }
    }
    return ScopeKind::Init;
  };

  const auto flush_stmt = [&]() {
    if (stmt.empty()) return;
    const std::vector<const Token*> tokens = stmt;
    stmt.clear();
    if (tokens.size() < 2) return;
    if (tokens.front()->kind == TokKind::Identifier &&
        mutable_static_skip_leading(tokens.front()->text)) {
      return;
    }
    const Token* name = nullptr;
    for (const Token* t : tokens) {
      if (is_punct(t, "(")) return;  // function decl / ctor-style init
      if (is_punct(t, "=") || is_punct(t, "[")) break;
      if (t->kind == TokKind::Identifier) {
        if (mutable_static_exempt_token(t->text)) return;
        name = t;
      }
    }
    // Exemption tokens anywhere in the statement (e.g. `= {...}`
    // initializers mentioning atomic) also clear it.
    for (const Token* t : tokens) {
      if (t->kind == TokKind::Identifier &&
          mutable_static_exempt_token(t->text)) {
        return;
      }
    }
    if (name == nullptr) return;
    // A guarded-by annotation on the declaration (own line or the line
    // above) satisfies the rule when the named mutex exists in-file.
    for (int l : {name->line, name->line - 1}) {
      const auto it = ctx.lexed->guarded_by.find(l);
      if (it == ctx.lexed->guarded_by.end()) continue;
      for (const std::string& mutex_name : it->second) {
        for (const Token& t : toks) {
          if (t.kind == TokKind::Identifier && t.text == mutex_name) {
            return;  // annotated and the mutex is real
          }
        }
      }
      ctx.report("conc.mutable-static", name->line,
                 "guarded-by(" + it->second.front() +
                     ") names a mutex not declared in this file");
      return;
    }
    ctx.report("conc.mutable-static", name->line,
               "mutable namespace-scope state '" + name->text +
                   "' needs a `msim-lint: guarded-by(<mutex>)` annotation "
                   "(or make it const/constexpr/atomic)");
  };

  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& tok = toks[i];
    if (is_punct(&tok, "{")) {
      const ScopeKind kind = classify_open(i);
      if (kind == ScopeKind::Namespace || kind == ScopeKind::FuncBody) {
        stmt.clear();
      }
      scopes.push_back(kind);
      if (kind != ScopeKind::Init) continue;
      // Braced initializers stay part of the enclosing statement; the
      // nested tokens are irrelevant to the declaration shape, skip to
      // the matching close.
      int depth = 1;
      while (++i < toks.size() && depth > 0) {
        if (is_punct(&toks[i], "{")) ++depth;
        if (is_punct(&toks[i], "}")) --depth;
      }
      --i;
      scopes.pop_back();
      continue;
    }
    if (is_punct(&tok, "}")) {
      if (scopes.size() > 1) {
        if (scopes.back() == ScopeKind::FuncBody) stmt.clear();
        scopes.pop_back();
      }
      continue;
    }
    if (scopes.back() != ScopeKind::Namespace) continue;
    if (is_punct(&tok, ";")) {
      flush_stmt();
      continue;
    }
    stmt.push_back(&tok);
  }
}

}  // namespace

void check_concurrency(FileContext& ctx) {
  if (!in_library(ctx.lexed->path)) return;
  const auto& toks = ctx.lexed->tokens;
  const std::set<std::string> guards = guard_decls(toks);

  for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
    if (!is_punct(&toks[i], ".") && !is_punct(&toks[i], "->")) continue;
    const Token& method = toks[i + 1];
    if (method.kind != TokKind::Identifier ||
        !is_punct(&toks[i + 2], "(")) {
      continue;
    }
    if (method.text == "lock" || method.text == "unlock") {
      const Token* recv = prev_token(toks, i);
      const bool on_guard = recv != nullptr &&
                            recv->kind == TokKind::Identifier &&
                            guards.count(recv->text) != 0;
      if (!on_guard) {
        ctx.report(
            "conc.raw-lock", method.line,
            "raw ." + method.text + "() on '" +
                (recv != nullptr ? recv->text : std::string("<expr>")) +
                "'; hold mutexes through std::lock_guard/std::unique_lock "
                "so an exception cannot leak the lock");
      }
    } else if (method.text == "detach") {
      ctx.report("conc.detached-thread", method.line,
                 "detached thread in library code; a detached thread "
                 "races process teardown — join it instead");
    }
  }

  // flock pairing per function: an acquire (LOCK_EX/LOCK_SH) with no
  // LOCK_UN in the same region leaks the file lock on every non-RAII
  // path. Release-only regions (RAII destructors) are fine.
  std::vector<FnRegion> regions;
  collect_fn_regions(*ctx.lexed, regions);
  for (const FnRegion& region : regions) {
    int acquire_line = 0;
    bool released = false;
    for (std::size_t i = region.body_begin; i < region.body_end; ++i) {
      if (!is_ident(&toks[i], "flock") ||
          !is_punct(next_token(toks, i), "(")) {
        continue;
      }
      int depth = 0;
      for (std::size_t j = i + 1; j < region.body_end; ++j) {
        if (is_punct(&toks[j], "(")) ++depth;
        if (is_punct(&toks[j], ")") && --depth == 0) break;
        if (is_ident(&toks[j], "LOCK_EX") || is_ident(&toks[j], "LOCK_SH")) {
          if (acquire_line == 0) acquire_line = toks[i].line;
        }
        if (is_ident(&toks[j], "LOCK_UN")) released = true;
      }
    }
    if (acquire_line != 0 && !released) {
      ctx.report("conc.flock-unpaired", acquire_line,
                 "flock acquire without a LOCK_UN release in the same "
                 "function; wrap the pair in an RAII holder");
    }
  }

  check_mutable_statics(ctx);
}

// --- layer DAG --------------------------------------------------------

namespace {

/// DESIGN.md §3 layering as ranks; an include may only point at an
/// equal or lower rank. tools/bench/tests sit above everything.
int module_rank(const std::string& module) {
  static const std::map<std::string, int> ranks = {
      {"common", 0},   {"data", 0},    {"machine", 1},  {"obs", 1},
      {"stats", 1},    {"cpusim", 2},  {"memsim", 2},   {"netsim", 2},
      {"workload", 3}, {"trace", 4},   {"simulate", 5}, {"probes", 6},
      {"convolve", 7}, {"metrics", 8}, {"report", 9},   {"pipeline", 10},
      {"serve", 11},
  };
  if (module == "bench" || module == "tools" || module == "tests") return 12;
  const auto it = ranks.find(module);
  return it != ranks.end() ? it->second : -1;
}

/// The module a repo-relative path belongs to: `src/<module>/...`, or
/// the top-level directory for bench/tools/tests.
std::string module_of(const std::string& path) {
  const std::size_t first = path.find('/');
  if (first == std::string::npos) return {};
  const std::string top = path.substr(0, first);
  if (top != "src") return top;
  const std::size_t second = path.find('/', first + 1);
  if (second == std::string::npos) return {};  // file directly under src/
  return path.substr(first + 1, second - first - 1);
}

}  // namespace

void check_layering(FileContext& ctx) {
  const int from_rank = module_rank(module_of(ctx.lexed->path));
  if (from_rank < 0) return;
  for (const IncludeDecl& include : ctx.lexed->includes) {
    const std::size_t slash = include.path.find('/');
    if (slash == std::string::npos) continue;  // same-dir header
    const int to_rank = module_rank(include.path.substr(0, slash));
    if (to_rank < 0 || to_rank <= from_rank) continue;
    ctx.report("layer.back-edge", include.line,
               "#include \"" + include.path + "\" points up the layer DAG "
               "(" + module_of(ctx.lexed->path) + " -> " +
                   include.path.substr(0, slash) +
                   "); invert the dependency or move the shared piece "
                   "down");
  }
}

}  // namespace internal

// --- registry + json rendering (public surface) -----------------------

std::vector<EnvKnob> parse_env_registry(const std::string& text) {
  std::vector<EnvKnob> knobs;
  std::istringstream in(text);
  std::string line;
  int number = 0;
  while (std::getline(in, line)) {
    ++number;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream fields(line);
    EnvKnob knob;
    if (!(fields >> knob.name >> knob.parser >> knob.fallback >> knob.doc)) {
      continue;
    }
    knob.line = number;
    knobs.push_back(std::move(knob));
  }
  return knobs;
}

std::string render_env_registry_markdown(const std::vector<EnvKnob>& knobs) {
  std::ostringstream out;
  out << "| Knob | Parser | Default | Documented in |\n"
      << "|---|---|---|---|\n";
  for (const EnvKnob& knob : knobs) {
    out << "| `" << knob.name << "` | " << knob.parser << " | `"
        << knob.fallback << "` | " << knob.doc << " |\n";
  }
  return out.str();
}

namespace {

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 8);
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof buffer, "\\u%04x", c);
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::string render_findings_json(const LintResult& result) {
  std::ostringstream out;
  out << "[";
  bool first = true;
  for (const Finding& finding : result.findings) {
    out << (first ? "\n" : ",\n");
    first = false;
    out << "  {\"file\":\"" << json_escape(finding.file) << "\","
        << "\"line\":" << finding.line << ","
        << "\"rule\":\"" << json_escape(finding.rule) << "\","
        << "\"severity\":\"" << to_string(finding.severity) << "\","
        << "\"baselined\":" << (finding.baselined ? "true" : "false") << ","
        << "\"message\":\"" << json_escape(finding.message) << "\"}";
  }
  out << (first ? "]" : "\n]") << "\n";
  return out.str();
}

}  // namespace msim::lint
