// msim-report — run-record inspection and perf-trajectory regression
// checks.
//
// Run records (src/obs/run_record.hpp, schema in docs/FORMATS.md) are the
// repo's performance ledger: one JSON file per bench configuration, with
// one sample appended per run. This tool turns them into decisions:
//
//   show FILE        render a record (identity, stage timings, cache and
//                    scheduler stats, predictor error summaries) as
//                    fixed-width tables.
//   diff BASE NEW    compare two records stage by stage with noise-aware
//                    thresholds: a stage regresses when its mean exceeds
//                    the base by more than max(k sigma of the combined
//                    re-run variance, a relative floor, an absolute
//                    floor). The variance comes from the records
//                    themselves — each holds every re-run's sample.
//   trajectory DIR   aggregate every record in DIR into per-experiment
//                    <experiment>_trajectory.json series files and gate
//                    on the newest sample: CI fails when the latest run
//                    left the noise band of its own history.
//
// Like msim-lint, the engine is a library (msim_report_core) so tests
// drive diff/trajectory logic in-process; the CLI is a thin shell.
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "common/json.hpp"

namespace msim::report_tool {

/// One measured series across a record's samples (a stage's seconds, the
/// process wall time, peak RSS).
struct Series {
  std::vector<double> values;  ///< one entry per sample, oldest first

  [[nodiscard]] std::size_t count() const { return values.size(); }
  [[nodiscard]] double mean() const;
  /// Sample standard deviation; 0 for fewer than two values.
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double last() const;
};

/// Per-metric predictor error summary (from the record's newest sample).
struct ErrorRow {
  std::string metric;
  std::size_t count = 0;
  double mean_abs_pct = 0.0;
  double median_abs_pct = 0.0;
  double max_abs_pct = 0.0;
};

/// One histogram snapshot (from the record's newest sample).
struct HistogramRow {
  double count = 0.0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
};

/// A run record reduced to the numbers show/diff/trajectory consume.
struct RecordSummary {
  std::string path;
  std::string tool;         ///< writer tag ("msim")
  std::string experiment;   ///< identity.info.experiment ("" when absent)
  std::string fingerprint;
  std::string git;
  std::string compiler;
  std::string build_type;
  std::string flags;
  std::string threads;      ///< MSIM_THREADS at record time ("" = default)
  std::string cache_dir;         ///< MSIM_CACHE_DIR at record time
  std::string cache_max_bytes;   ///< MSIM_CACHE_MAX_BYTES at record time
  std::string prefetch;          ///< MSIM_GRAPH_PREFETCH at record time
  int schema = 0;
  std::size_t samples = 0;
  std::vector<double> created_unix;      ///< per sample
  Series wall_seconds;
  Series peak_rss_bytes;
  std::map<std::string, Series> stages;  ///< stage label -> seconds series
  /// stage label -> per-sample max task seconds (straggler indicator)
  std::map<std::string, Series> stage_max_seconds;
  std::map<std::string, double> counters;  ///< newest sample
  std::map<std::string, double> gauges;    ///< newest sample
  std::map<std::string, HistogramRow> histograms;  ///< newest sample
  std::vector<ErrorRow> errors;            ///< newest sample
};

/// Reduce a parsed record document. Throws msim::precondition_error when
/// the document is not a supported run record (wrong schema, missing
/// sections).
[[nodiscard]] RecordSummary summarize_record(const json::Value& record,
                                             std::string path);

/// Load + parse + summarize a record file; throws msim::precondition_error
/// on read or parse failure.
[[nodiscard]] RecordSummary load_record(const std::string& path);

/// Noise-aware regression thresholds. A comparison value regresses when
///   new_mean - base_mean > max(sigmas * sqrt(s_base^2 + s_new^2),
///                              rel_floor * base_mean,
///                              abs_floor)
/// so single-sample records still get a sane band (the floors) and noisy
/// multi-sample records widen their own band (the sigma term).
struct Thresholds {
  double sigmas = 3.0;
  double rel_floor = 0.10;   ///< fraction of the base mean
  double abs_floor = 0.05;   ///< absolute floor, in the series' unit
};

[[nodiscard]] double regression_threshold(double base_mean,
                                          double base_stddev,
                                          double new_stddev,
                                          const Thresholds& thresholds);

/// One compared series in a diff.
struct DiffRow {
  std::string name;  ///< "wall_seconds", "stage:assemble", ...
  double base_mean = 0.0;
  double base_stddev = 0.0;
  double new_mean = 0.0;
  double new_stddev = 0.0;
  double threshold = 0.0;
  bool regression = false;

  [[nodiscard]] double delta() const { return new_mean - base_mean; }
};

struct DiffReport {
  std::vector<DiffRow> rows;
  std::vector<std::string> notes;  ///< identity drift, accuracy drift, ...
  bool regression = false;

  /// Fixed-width rendering (table + verdict line) for stdout.
  [[nodiscard]] std::string render(const std::string& base_label,
                                   const std::string& new_label) const;
};

/// Compare two records (timing series + predictor accuracy). Records need
/// not share a fingerprint — diffing across builds is the point — but
/// identity differences are surfaced as notes.
[[nodiscard]] DiffReport diff_records(const RecordSummary& base,
                                      const RecordSummary& current,
                                      const Thresholds& thresholds);

/// Per-experiment trajectory: every sample of every record of one
/// experiment, ordered oldest-first, gated on the newest sample staying
/// inside the noise band of its predecessors.
struct Trajectory {
  std::string experiment;
  std::size_t samples = 0;
  DiffReport verdict;  ///< empty rows when fewer than two samples
  std::string json;    ///< serialized <experiment>_trajectory.json body
};

/// Build one trajectory per distinct experiment name. Records with an
/// empty experiment name are grouped under "unnamed".
[[nodiscard]] std::vector<Trajectory> build_trajectories(
    std::vector<RecordSummary> records, const Thresholds& thresholds);

/// Render a single record as tables (the `show` command).
[[nodiscard]] std::string render_record(const RecordSummary& record);

/// Filesystem-safe experiment slug used in trajectory file names
/// (non-alphanumerics become '_').
[[nodiscard]] std::string experiment_slug(const std::string& experiment);

}  // namespace msim::report_tool
