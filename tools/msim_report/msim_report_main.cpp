// msim-report CLI. Thin shell over msim_report_core (report_tool.hpp):
//
//   msim-report show FILE
//   msim-report diff BASE NEW [threshold flags]
//   msim-report trajectory DIR [--out DIR] [threshold flags]
//
// Threshold flags: --sigmas N, --rel-floor F, --abs-floor S (see
// report_tool.hpp for the threshold formula).
//
// Tables go to stdout (they ARE this tool's output stream); usage and IO
// problems go to stderr. Exit status: 0 clean / no regression, 1 when a
// diff or trajectory verdict is REGRESSION, 2 on usage/IO errors.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "msim_report/report_tool.hpp"

namespace {

namespace fs = std::filesystem;
using namespace msim::report_tool;

int usage(const char* error) {
  if (error != nullptr) std::fprintf(stderr, "error: %s\n\n", error);
  std::fprintf(
      stderr,
      "msim-report — run-record inspection and perf-trajectory checks\n\n"
      "usage:\n"
      "  msim-report show FILE\n"
      "  msim-report diff BASE NEW [options]\n"
      "  msim-report trajectory DIR [--out DIR] [options]\n\n"
      "options:\n"
      "  --sigmas N     noise band width in combined stddevs (default 3)\n"
      "  --rel-floor F  relative threshold floor (default 0.10)\n"
      "  --abs-floor S  absolute threshold floor in seconds "
      "(default 0.05)\n");
  return error != nullptr ? 2 : 0;
}

bool parse_double(const char* text, double* out) {
  char* end = nullptr;
  const double value = std::strtod(text, &end);
  if (end == text || *end != '\0') return false;
  *out = value;
  return true;
}

/// Strip recognised threshold flags (and --out) out of argv; the
/// remaining tokens are the command's positional arguments.
bool parse_common_flags(std::vector<std::string>& args,
                        Thresholds* thresholds, std::string* out_dir) {
  std::vector<std::string> positional;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    auto next_value = [&](double* slot) {
      if (i + 1 >= args.size()) return false;
      return parse_double(args[++i].c_str(), slot);
    };
    if (arg == "--sigmas") {
      if (!next_value(&thresholds->sigmas)) return false;
    } else if (arg == "--rel-floor") {
      if (!next_value(&thresholds->rel_floor)) return false;
    } else if (arg == "--abs-floor") {
      if (!next_value(&thresholds->abs_floor)) return false;
    } else if (arg == "--out") {
      if (out_dir == nullptr || i + 1 >= args.size()) return false;
      *out_dir = args[++i];
    } else {
      positional.push_back(arg);
    }
  }
  args = std::move(positional);
  return true;
}

int run_show(const std::vector<std::string>& args) {
  if (args.size() != 1) return usage("show takes exactly one record file");
  const RecordSummary record = load_record(args[0]);
  std::printf("%s", render_record(record).c_str());
  return 0;
}

int run_diff(const std::vector<std::string>& args,
             const Thresholds& thresholds) {
  if (args.size() != 2) return usage("diff takes BASE and NEW record files");
  const RecordSummary base = load_record(args[0]);
  const RecordSummary current = load_record(args[1]);
  const DiffReport report = diff_records(base, current, thresholds);
  std::printf("%s", report.render(args[0], args[1]).c_str());
  return report.regression ? 1 : 0;
}

int run_trajectory(const std::vector<std::string>& args,
                   const Thresholds& thresholds,
                   const std::string& out_dir) {
  if (args.size() != 1) return usage("trajectory takes a directory");
  const fs::path dir(args[0]);
  std::error_code ec;
  if (!fs::is_directory(dir, ec)) {
    std::fprintf(stderr, "error: %s is not a directory\n",
                 args[0].c_str());
    return 2;
  }

  std::vector<RecordSummary> records;
  std::vector<fs::path> candidates;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    if (entry.is_regular_file() && entry.path().extension() == ".json") {
      candidates.push_back(entry.path());
    }
  }
  std::sort(candidates.begin(), candidates.end());
  for (const fs::path& path : candidates) {
    if (path.filename().string().find("_trajectory.json") !=
        std::string::npos) {
      continue;  // our own output from a previous pass
    }
    try {
      records.push_back(load_record(path.string()));
    } catch (const std::exception&) {
      // Not a run record (other JSON artifacts share directories); skip.
    }
  }
  if (records.empty()) {
    std::fprintf(stderr, "error: no run records found in %s\n",
                 args[0].c_str());
    return 2;
  }

  const fs::path target = out_dir.empty() ? dir : fs::path(out_dir);
  fs::create_directories(target, ec);

  bool regression = false;
  for (const Trajectory& trajectory :
       build_trajectories(std::move(records), thresholds)) {
    const fs::path out_path =
        target / (experiment_slug(trajectory.experiment) +
                  "_trajectory.json");
    std::ofstream out(out_path, std::ios::trunc);
    if (!out) {
      std::fprintf(stderr, "error: cannot write %s\n",
                   out_path.string().c_str());
      return 2;
    }
    out << trajectory.json;

    std::printf("experiment %s: %zu samples -> %s\n",
                trajectory.experiment.c_str(), trajectory.samples,
                out_path.string().c_str());
    if (!trajectory.verdict.rows.empty()) {
      std::printf("%s", trajectory.verdict
                            .render("history (all but newest sample)",
                                    "newest sample")
                            .c_str());
    } else {
      std::printf("verdict: not enough samples to gate\n");
    }
    std::printf("\n");
    if (trajectory.verdict.regression) regression = true;
  }
  return regression ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage("missing command");
  const std::string command = argv[1];
  std::vector<std::string> args;
  for (int i = 2; i < argc; ++i) args.emplace_back(argv[i]);

  Thresholds thresholds;
  std::string out_dir;
  if (!parse_common_flags(args, &thresholds, &out_dir)) {
    return usage("bad flag value");
  }

  try {
    if (command == "show") return run_show(args);
    if (command == "diff") return run_diff(args, thresholds);
    if (command == "trajectory") {
      return run_trajectory(args, thresholds, out_dir);
    }
    if (command == "--help" || command == "help") return usage(nullptr);
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 2;
  }
  return usage(("unknown command: " + command).c_str());
}
