#include "msim_report/report_tool.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/check.hpp"
#include "common/table.hpp"
#include "obs/run_record.hpp"

namespace msim::report_tool {

namespace {

std::string format_number(double value) {
  if (value == static_cast<double>(static_cast<long long>(value)) &&
      value >= -9.0e15 && value <= 9.0e15) {
    return std::to_string(static_cast<long long>(value));
  }
  char buffer[40];
  std::snprintf(buffer, sizeof buffer, "%.17g", value);
  return buffer;
}

std::string seconds_cell(double value) {
  char buffer[40];
  std::snprintf(buffer, sizeof buffer, "%.4f", value);
  return buffer;
}

}  // namespace

double Series::mean() const {
  if (values.empty()) return 0.0;
  double sum = 0.0;
  for (double value : values) sum += value;
  return sum / static_cast<double>(values.size());
}

double Series::stddev() const {
  if (values.size() < 2) return 0.0;
  const double m = mean();
  double sq = 0.0;
  for (double value : values) sq += (value - m) * (value - m);
  return std::sqrt(sq / static_cast<double>(values.size() - 1));
}

double Series::last() const { return values.empty() ? 0.0 : values.back(); }

// msim-lint: proto(run.record, reader)
RecordSummary summarize_record(const json::Value& record, std::string path) {
  MSIM_REQUIRE(record.is_object(), "run record is not a JSON object");
  const int schema = static_cast<int>(record.number_or("schema", 0));
  MSIM_REQUIRE(schema == obs::kRunRecordSchemaVersion,
               "unsupported run record schema " + std::to_string(schema) +
                   " in " + path);

  RecordSummary summary;
  summary.path = std::move(path);
  summary.schema = schema;
  summary.tool = record.string_or("tool", "");

  const json::Value* identity = record.find("identity");
  MSIM_REQUIRE(identity != nullptr && identity->is_object(),
               "run record has no identity section: " + summary.path);
  summary.fingerprint = identity->string_or("fingerprint", "");
  summary.git = identity->string_or("git", "");
  summary.compiler = identity->string_or("compiler", "");
  summary.build_type = identity->string_or("build_type", "");
  summary.flags = identity->string_or("flags", "");
  summary.threads = identity->string_or("threads", "");
  summary.cache_dir = identity->string_or("cache_dir", "");
  summary.cache_max_bytes = identity->string_or("cache_max_bytes", "");
  summary.prefetch = identity->string_or("prefetch", "");
  if (const json::Value* info = identity->find("info");
      info != nullptr && info->is_object()) {
    summary.experiment = info->string_or("experiment", "");
  }

  const json::Value* samples = record.find("samples");
  MSIM_REQUIRE(samples != nullptr && samples->is_array() &&
                   !samples->items().empty(),
               "run record has no samples: " + summary.path);
  summary.samples = samples->items().size();

  for (const json::Value& sample : samples->items()) {
    MSIM_REQUIRE(sample.is_object(),
                 "run record sample is not an object: " + summary.path);
    summary.created_unix.push_back(sample.number_or("created_unix", 0.0));
    summary.wall_seconds.values.push_back(
        sample.number_or("wall_seconds", 0.0));
    summary.peak_rss_bytes.values.push_back(
        sample.number_or("peak_rss_bytes", 0.0));
    if (const json::Value* stages = sample.find("stages");
        stages != nullptr && stages->is_object()) {
      for (const auto& [label, stage] : stages->fields()) {
        summary.stages[label].values.push_back(
            stage.number_or("seconds", 0.0));
        summary.stage_max_seconds[label].values.push_back(
            stage.number_or("max_seconds", 0.0));
      }
    }
  }

  // Counters, gauges, histograms and error summaries: the newest sample
  // speaks for the record.
  const json::Value& newest = samples->items().back();
  if (const json::Value* counters = newest.find("counters");
      counters != nullptr && counters->is_object()) {
    for (const auto& [name, value] : counters->fields()) {
      if (value.is_number()) summary.counters[name] = value.as_number();
    }
  }
  if (const json::Value* gauges = newest.find("gauges");
      gauges != nullptr && gauges->is_object()) {
    for (const auto& [name, value] : gauges->fields()) {
      if (value.is_number()) summary.gauges[name] = value.as_number();
    }
  }
  if (const json::Value* histograms = newest.find("histograms");
      histograms != nullptr && histograms->is_object()) {
    for (const auto& [name, row] : histograms->fields()) {
      if (!row.is_object()) continue;
      summary.histograms[name] = HistogramRow{
          .count = row.number_or("count", 0.0),
          .sum = row.number_or("sum", 0.0),
          .min = row.number_or("min", 0.0),
          .max = row.number_or("max", 0.0),
          .mean = row.number_or("mean", 0.0),
          .p50 = row.number_or("p50", 0.0),
          .p95 = row.number_or("p95", 0.0)};
    }
  }
  if (const json::Value* errors = newest.find("errors");
      errors != nullptr && errors->is_array()) {
    for (const json::Value& row : errors->items()) {
      summary.errors.push_back(ErrorRow{
          .metric = row.string_or("metric", ""),
          .count = static_cast<std::size_t>(row.number_or("count", 0.0)),
          .mean_abs_pct = row.number_or("mean_abs_pct", 0.0),
          .median_abs_pct = row.number_or("median_abs_pct", 0.0),
          .max_abs_pct = row.number_or("max_abs_pct", 0.0)});
    }
  }
  return summary;
}

RecordSummary load_record(const std::string& path) {
  std::ifstream in(path);
  MSIM_REQUIRE(static_cast<bool>(in), "cannot read run record " + path);
  std::ostringstream text;
  text << in.rdbuf();
  return summarize_record(json::parse(text.str()), path);
}

double regression_threshold(double base_mean, double base_stddev,
                            double new_stddev,
                            const Thresholds& thresholds) {
  const double sigma = std::sqrt(base_stddev * base_stddev +
                                 new_stddev * new_stddev);
  return std::max({thresholds.sigmas * sigma,
                   thresholds.rel_floor * base_mean, thresholds.abs_floor});
}

namespace {

DiffRow compare_series(const std::string& name, const Series& base,
                       const Series& current,
                       const Thresholds& thresholds) {
  DiffRow row;
  row.name = name;
  row.base_mean = base.mean();
  row.base_stddev = base.stddev();
  row.new_mean = current.mean();
  row.new_stddev = current.stddev();
  row.threshold = regression_threshold(row.base_mean, row.base_stddev,
                                       row.new_stddev, thresholds);
  row.regression = row.delta() > row.threshold;
  return row;
}

const Series* find_stage(const RecordSummary& record,
                         const std::string& label) {
  const auto it = record.stages.find(label);
  return it == record.stages.end() ? nullptr : &it->second;
}

}  // namespace

DiffReport diff_records(const RecordSummary& base,
                        const RecordSummary& current,
                        const Thresholds& thresholds) {
  DiffReport report;

  if (base.fingerprint != current.fingerprint) {
    report.notes.push_back(
        "identity differs (base " + base.fingerprint + ", new " +
        current.fingerprint + "): comparing across configurations");
  }
  if (base.git != current.git) {
    report.notes.push_back("git: " + base.git + " -> " + current.git);
  }

  report.rows.push_back(compare_series("wall_seconds", base.wall_seconds,
                                       current.wall_seconds, thresholds));

  // Union of stage labels; a stage that exists on only one side cannot be
  // compared and is surfaced as a note instead.
  std::vector<std::string> labels;
  for (const auto& [label, series] : base.stages) labels.push_back(label);
  for (const auto& [label, series] : current.stages) {
    if (base.stages.find(label) == base.stages.end()) {
      labels.push_back(label);
    }
  }
  std::sort(labels.begin(), labels.end());
  for (const std::string& label : labels) {
    const Series* in_base = find_stage(base, label);
    const Series* in_current = find_stage(current, label);
    if (in_base == nullptr) {
      report.notes.push_back("stage " + label +
                             " only in the new record (not compared)");
      continue;
    }
    if (in_current == nullptr) {
      report.notes.push_back("stage " + label +
                             " only in the base record (not compared)");
      continue;
    }
    report.rows.push_back(
        compare_series("stage:" + label, *in_base, *in_current, thresholds));
  }

  // Predictor accuracy is deterministic: any drift in the per-metric mean
  // absolute error means behaviour changed, which is a regression in its
  // own right regardless of timings.
  for (const ErrorRow& base_row : base.errors) {
    for (const ErrorRow& new_row : current.errors) {
      if (base_row.metric != new_row.metric) continue;
      const double drift =
          std::abs(new_row.mean_abs_pct - base_row.mean_abs_pct);
      if (drift > 1e-6) {
        report.notes.push_back(
            "accuracy drift for " + base_row.metric + ": mean |err| " +
            format_number(base_row.mean_abs_pct) + " -> " +
            format_number(new_row.mean_abs_pct));
        report.regression = true;
      }
    }
  }

  for (const DiffRow& row : report.rows) {
    if (row.regression) report.regression = true;
  }
  return report;
}

std::string DiffReport::render(const std::string& base_label,
                               const std::string& new_label) const {
  std::ostringstream out;
  AsciiTable table({"series", "base mean", "base sd", "new mean", "new sd",
                    "delta", "threshold", "verdict"});
  for (std::size_t column = 1; column <= 6; ++column) {
    table.set_align(column, Align::Right);
  }
  for (const DiffRow& row : rows) {
    table.add_row({row.name, seconds_cell(row.base_mean),
                   seconds_cell(row.base_stddev),
                   seconds_cell(row.new_mean), seconds_cell(row.new_stddev),
                   seconds_cell(row.delta()), seconds_cell(row.threshold),
                   row.regression ? "REGRESSION" : "ok"});
  }
  out << "base: " << base_label << "\n";
  out << "new:  " << new_label << "\n\n";
  out << table.render();
  for (const std::string& note : notes) out << "note: " << note << "\n";
  out << (regression ? "verdict: REGRESSION\n" : "verdict: no regression\n");
  return out.str();
}

std::string experiment_slug(const std::string& experiment) {
  std::string slug;
  for (const char c : experiment) {
    const bool keep = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      (c >= '0' && c <= '9') || c == '-' || c == '_';
    slug += keep ? c : '_';
  }
  return slug.empty() ? "unnamed" : slug;
}

// msim-lint: proto(run.trajectory, writer)
std::vector<Trajectory> build_trajectories(
    std::vector<RecordSummary> records, const Thresholds& thresholds) {
  // Group by experiment, then order each group's records by their first
  // sample time so concatenated series read oldest-first.
  std::map<std::string, std::vector<RecordSummary>> groups;
  for (RecordSummary& record : records) {
    const std::string name =
        record.experiment.empty() ? "unnamed" : record.experiment;
    groups[name].push_back(std::move(record));
  }

  std::vector<Trajectory> trajectories;
  for (auto& [experiment, group] : groups) {
    std::sort(group.begin(), group.end(),
              [](const RecordSummary& a, const RecordSummary& b) {
                const double a_first =
                    a.created_unix.empty() ? 0.0 : a.created_unix.front();
                const double b_first =
                    b.created_unix.empty() ? 0.0 : b.created_unix.front();
                return a_first < b_first;
              });

    Trajectory trajectory;
    trajectory.experiment = experiment;

    Series wall;
    std::map<std::string, Series> stages;
    std::vector<std::string> revisions;
    for (const RecordSummary& record : group) {
      for (double value : record.wall_seconds.values) {
        wall.values.push_back(value);
      }
      for (const auto& [label, series] : record.stages) {
        for (double value : series.values) {
          stages[label].values.push_back(value);
        }
      }
      revisions.push_back(record.git);
    }
    trajectory.samples = wall.count();

    // Verdict: the newest sample against the noise band of its
    // predecessors. With one sample there is no history to gate on.
    if (wall.count() >= 2) {
      auto split = [](const Series& series) {
        Series history;
        Series latest;
        history.values.assign(series.values.begin(),
                              series.values.end() - 1);
        latest.values.push_back(series.values.back());
        return std::make_pair(history, latest);
      };
      const auto [wall_history, wall_latest] = split(wall);
      trajectory.verdict.rows.push_back(compare_series(
          "wall_seconds", wall_history, wall_latest, thresholds));
      for (const auto& [label, series] : stages) {
        if (series.count() != wall.count()) continue;  // ragged: skip gate
        const auto [history, latest] = split(series);
        trajectory.verdict.rows.push_back(compare_series(
            "stage:" + label, history, latest, thresholds));
      }
      for (const DiffRow& row : trajectory.verdict.rows) {
        if (row.regression) trajectory.verdict.regression = true;
      }
    }

    std::ostringstream json;
    json << "{\"schema\":1,\"experiment\":\"" << json::escape(experiment)
         << "\",\"samples\":" << trajectory.samples << ",\"revisions\":[";
    for (std::size_t i = 0; i < revisions.size(); ++i) {
      if (i != 0) json << ',';
      json << '"' << json::escape(revisions[i]) << '"';
    }
    json << "],\"series\":{\"wall_seconds\":[";
    for (std::size_t i = 0; i < wall.values.size(); ++i) {
      if (i != 0) json << ',';
      json << format_number(wall.values[i]);
    }
    json << "],\"stages\":{";
    bool first_stage = true;
    for (const auto& [label, series] : stages) {
      if (!first_stage) json << ',';
      first_stage = false;
      json << '"' << json::escape(label) << "\":[";
      for (std::size_t i = 0; i < series.values.size(); ++i) {
        if (i != 0) json << ',';
        json << format_number(series.values[i]);
      }
      json << ']';
    }
    json << "}},\"verdict\":{\"regression\":"
         << (trajectory.verdict.regression ? "true" : "false")
         << ",\"rows\":[";
    for (std::size_t i = 0; i < trajectory.verdict.rows.size(); ++i) {
      const DiffRow& row = trajectory.verdict.rows[i];
      if (i != 0) json << ',';
      json << "{\"name\":\"" << json::escape(row.name)
           << "\",\"history_mean\":" << format_number(row.base_mean)
           << ",\"history_stddev\":" << format_number(row.base_stddev)
           << ",\"latest\":" << format_number(row.new_mean)
           << ",\"threshold\":" << format_number(row.threshold)
           << ",\"regression\":" << (row.regression ? "true" : "false")
           << '}';
    }
    json << "]}}\n";
    trajectory.json = json.str();
    trajectories.push_back(std::move(trajectory));
  }
  return trajectories;
}

std::string render_record(const RecordSummary& record) {
  std::ostringstream out;
  out << "run record: " << record.path << "\n";
  if (!record.tool.empty()) out << "tool: " << record.tool << "\n";
  out << "experiment: "
      << (record.experiment.empty() ? "(unnamed)" : record.experiment)
      << "\n";
  out << "fingerprint: " << record.fingerprint << "\n";
  out << "git: " << record.git << "\n";
  out << "compiler: " << record.compiler << "\n";
  if (!record.build_type.empty()) {
    out << "build: " << record.build_type;
    if (!record.flags.empty()) out << " (" << record.flags << ")";
    out << "\n";
  }
  out << "threads: "
      << (record.threads.empty() ? "(default)" : record.threads) << "\n";
  if (!record.cache_dir.empty()) {
    out << "cache: " << record.cache_dir;
    if (!record.cache_max_bytes.empty()) {
      out << " (max " << record.cache_max_bytes << " bytes)";
    }
    out << "\n";
  }
  if (!record.prefetch.empty()) {
    out << "prefetch: " << record.prefetch << "\n";
  }
  out << "samples: " << record.samples << "\n\n";

  AsciiTable timings({"series", "runs", "mean s", "sd s", "last s"});
  for (std::size_t column = 1; column <= 4; ++column) {
    timings.set_align(column, Align::Right);
  }
  timings.add_row({"wall_seconds",
                   std::to_string(record.wall_seconds.count()),
                   seconds_cell(record.wall_seconds.mean()),
                   seconds_cell(record.wall_seconds.stddev()),
                   seconds_cell(record.wall_seconds.last())});
  for (const auto& [label, series] : record.stages) {
    timings.add_row({"stage:" + label, std::to_string(series.count()),
                     seconds_cell(series.mean()),
                     seconds_cell(series.stddev()),
                     seconds_cell(series.last())});
  }
  out << timings.render() << "\n";

  // Straggler view: any stage whose last sample recorded a per-task max.
  bool any_stage_max = false;
  for (const auto& [label, series] : record.stage_max_seconds) {
    if (series.last() > 0.0) any_stage_max = true;
  }
  if (any_stage_max) {
    AsciiTable stragglers({"stage", "max task s (last run)"});
    stragglers.set_align(1, Align::Right);
    for (const auto& [label, series] : record.stage_max_seconds) {
      if (series.last() <= 0.0) continue;
      stragglers.add_row({label, seconds_cell(series.last())});
    }
    out << stragglers.render() << "\n";
  }

  if (!record.counters.empty()) {
    AsciiTable counters({"counter", "value"});
    counters.set_align(1, Align::Right);
    for (const auto& [name, value] : record.counters) {
      counters.add_row({name, format_number(value)});
    }
    out << counters.render() << "\n";
  }

  if (!record.gauges.empty()) {
    AsciiTable gauges({"gauge", "value"});
    gauges.set_align(1, Align::Right);
    for (const auto& [name, value] : record.gauges) {
      gauges.add_row({name, format_number(value)});
    }
    out << gauges.render() << "\n";
  }

  if (!record.histograms.empty()) {
    AsciiTable histograms(
        {"histogram", "n", "sum", "min", "mean", "p50", "p95", "max"});
    for (std::size_t column = 1; column <= 7; ++column) {
      histograms.set_align(column, Align::Right);
    }
    for (const auto& [name, row] : record.histograms) {
      histograms.add_row({name, format_number(row.count),
                          format_number(row.sum), format_number(row.min),
                          format_number(row.mean), format_number(row.p50),
                          format_number(row.p95), format_number(row.max)});
    }
    out << histograms.render() << "\n";
  }

  if (!record.errors.empty()) {
    AsciiTable errors(
        {"metric", "n", "mean |err| %", "median |err| %", "max |err| %"});
    for (std::size_t column = 1; column <= 4; ++column) {
      errors.set_align(column, Align::Right);
    }
    for (const ErrorRow& row : record.errors) {
      errors.add_row({row.metric, std::to_string(row.count),
                      AsciiTable::num(row.mean_abs_pct, 1),
                      AsciiTable::num(row.median_abs_pct, 1),
                      AsciiTable::num(row.max_abs_pct, 1)});
    }
    out << errors.render();
  }
  return out.str();
}

}  // namespace msim::report_tool
