// msim CLI subcommands. Each command takes the remaining argv tokens and
// returns a process exit code; argument errors print usage and return 2.
#pragma once

#include <string>
#include <vector>

namespace msim::cli {

using Args = std::vector<std::string>;

int cmd_machines(const Args& args);       ///< list the machine registry
int cmd_show_machine(const Args& args);   ///< dump one machine config
int cmd_probe(const Args& args);          ///< run the probe suite
int cmd_trace(const Args& args);          ///< trace an application
int cmd_predict(const Args& args);        ///< predict one configuration
int cmd_rank(const Args& args);           ///< rank all systems for an app
int cmd_campaign(const Args& args);       ///< the full Table-4 study
int cmd_export_app(const Args& args);     ///< dump a TI-05 app model to text
int cmd_predict_custom(const Args& args); ///< predict a user-defined app
int cmd_worker(const Args& args);         ///< distributed-build worker loop
int cmd_serve(const Args& args);          ///< resident prediction service

/// Print top-level usage.
void print_usage();

}  // namespace msim::cli
